#pragma once

/// \file prof.hpp
/// `dsouth::prof` — host-side wall-clock profiling for the simulator
/// itself. The observability stack (docs/observability.md) attributes
/// *modeled* α–β–γ seconds; this layer answers the orthogonal question of
/// where the **host** spends real time running the simulation (fence
/// merging, delivery draws, solver phases, trace analysis), which is what
/// the ROADMAP's "push P into the hundreds" item needs profiled.
///
/// Design rules, mirroring the tracer (docs/observability.md):
///
/// * **Attach by pointer, zero-cost when off.** `Runtime::set_profiler`
///   holds a nullable `prof::Profiler*`; every timing hook is a
///   `ScopedPhase` whose constructor is an inlined null test. With no
///   profiler attached the simulation's traces, metrics, and bench
///   records are byte-identical to a build that never heard of profiling
///   (enforced by tests/test_prof.cpp). Building with
///   `-DDSOUTH_PROF_DISABLED` compiles every hook out entirely.
/// * **Deterministic-safe.** Profiling reads `std::chrono::steady_clock`
///   and process-wide allocation counters — both nondeterministic — so
///   nothing it measures may feed back into the simulation, and every
///   exporter treats its numbers as *advisory* (never gated bit-exactly;
///   the one deterministic product, allocations per warm solver step, is
///   measured by bench/scaling on a dedicated sequential window).
/// * **One lane per rank plus a runtime lane.** Like the metrics
///   registry, lane p is only written by the thread driving rank p
///   mid-epoch, and lane P (the runtime lane) only by the single-threaded
///   fence/driver/analysis code — so aggregation needs no atomics and
///   adds no synchronization to the threaded backend.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dsouth::prof {

/// The host phases the simulator attributes wall time to. Per-rank lanes
/// use the solver phases (absorb/relax/encode/stage); the runtime lane
/// carries the rest — a lane discipline `dsouth-analyze -check` verifies
/// against a prof record, along with the nesting invariants: every
/// rank-lane span lies inside a driver `kStep` span, and
/// `kDeliveryPolicy`/`kNodePrepass` spans nest inside `kFence` spans.
/// (`kEncode` usually nests inside `kRelax`, but the correction /
/// residual-update passes encode outside any relax span, so that one is
/// not a checkable invariant.)
enum class PhaseId : int {
  kStep = 0,        ///< one full solver parallel step (driver, runtime lane)
  kAbsorb,          ///< solver rank_absorb (per-rank lane)
  kRelax,           ///< solver rank_relax (per-rank lane)
  kEncode,          ///< wire-record encode + channel staging loops (per-rank lane)
  kStage,           ///< Runtime::stage payload handoff (per-rank lane)
  kFence,           ///< Runtime::fence merge + maturation (runtime lane)
  kDeliveryPolicy,  ///< event-driven latency draws + clamping (nested in fence)
  kNodePrepass,     ///< node-aware hop pre-pass (nested in fence)
  kAnalysis,        ///< trace analysis (dsouth::analysis, runtime lane)
};

inline constexpr int kNumPhases = 9;

/// Stable lower-case phase name ("step", "absorb", ...), used by every
/// exporter and by the prof-record cross-rules.
const char* phase_name(PhaseId phase);

/// log2-nanosecond histogram width: bucket i counts spans whose duration
/// in ns has bit-width i (bucket 0 = 0 ns, bucket 40 ≈ 18 minutes).
inline constexpr int kNumHistBuckets = 41;

/// Aggregate for one (lane, phase) slot.
struct PhaseStats {
  std::uint64_t count = 0;     ///< spans recorded
  std::uint64_t total_ns = 0;  ///< summed wall duration
  std::uint64_t max_ns = 0;    ///< worst single span
  std::array<std::uint64_t, kNumHistBuckets> hist{};  ///< log2-ns histogram
};

/// Process-wide allocation counters, live only when the interposing
/// operator new/delete pair (src/prof/alloc_hook.cpp) was compiled into
/// the binary — see `dsouth_enable_alloc_tracking()` in
/// src/prof/CMakeLists.txt. Without the hook every counter stays 0 and
/// `available()` is false, so callers can always read them.
namespace alloc_hook {
bool available();
std::uint64_t allocations();  ///< operator new calls so far
std::uint64_t bytes();        ///< bytes requested from operator new
std::uint64_t frees();        ///< operator delete calls so far
namespace detail {
void note_alloc(std::uint64_t n);  ///< called by the interposed operator new
void note_free();                  ///< called by the interposed operator delete
void set_available();              ///< called once by the hook TU's initializer
}  // namespace detail
}  // namespace alloc_hook

/// Wall-clock aggregation for one run: `num_ranks + 1` lanes × kNumPhases
/// slots of PhaseStats, an optional bounded per-lane span log (for the
/// Chrome/Perfetto exporter), and the run's allocation-counter window.
///
/// Thread contract (same as trace::MetricsRegistry): `record` on lane p
/// may run concurrently with `record` on lane q ≠ p; the runtime lane is
/// only written single-threaded (fence/driver/analysis). Everything else
/// — construction, snapshots, the alloc window — happens outside epochs.
class Profiler {
 public:
  /// One span kept by the span log (Chrome exporter input). Start is
  /// nanoseconds since the profiler's construction, on steady_clock.
  struct Span {
    PhaseId phase;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
  };

  /// `span_capacity` bounds the per-lane span log (0 disables it; spans
  /// past the bound are dropped and counted, aggregates still update).
  explicit Profiler(int num_ranks, std::size_t span_capacity = 1 << 14);

  int num_ranks() const { return num_ranks_; }
  /// The extra lane fence/driver/analysis phases record into.
  int runtime_lane() const { return num_ranks_; }
  int num_lanes() const { return num_ranks_ + 1; }

  /// Fold one finished span into (lane, phase); called by ~ScopedPhase.
  void record(int lane, PhaseId phase, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  /// Nanoseconds from the profiler's construction to `tp`.
  std::uint64_t since_origin_ns(
      std::chrono::steady_clock::time_point tp) const;

  const PhaseStats& stats(int lane, PhaseId phase) const;
  /// Aggregate of `stats` over every lane (count/total/max/hist summed;
  /// max is the max over lanes).
  PhaseStats lane_sum(PhaseId phase) const;

  const std::vector<Span>& spans(int lane) const;
  std::uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  /// Allocation window: `begin_alloc_window` snapshots the process-wide
  /// counters, `end_alloc_window` stores the deltas (0/0/0 when the hook
  /// is not linked). The driver brackets the run with these.
  void begin_alloc_window();
  void end_alloc_window();
  bool alloc_tracking() const { return alloc_tracking_; }
  std::uint64_t allocs_total() const { return allocs_total_; }
  std::uint64_t allocs_bytes() const { return allocs_bytes_; }
  std::uint64_t frees_total() const { return frees_total_; }

 private:
  int num_ranks_;
  std::size_t span_capacity_;
  std::chrono::steady_clock::time_point origin_;
  std::vector<PhaseStats> slots_;        ///< lane-major, kNumPhases per lane
  std::vector<std::vector<Span>> spans_; ///< per lane, bounded
  std::atomic<std::uint64_t> dropped_spans_{0};  ///< shared across lanes
  bool alloc_tracking_ = false;
  std::uint64_t alloc_base_allocs_ = 0, alloc_base_bytes_ = 0,
                alloc_base_frees_ = 0;
  std::uint64_t allocs_total_ = 0, allocs_bytes_ = 0, frees_total_ = 0;
};

/// RAII phase timer. With a null profiler the constructor and destructor
/// are each one branch — the hooks stay in the hot paths unconditionally,
/// matching the tracer's zero-cost-when-off idiom. Non-copyable; returned
/// by value only through guaranteed elision (dist/solver_base.hpp).
class ScopedPhase {
 public:
#ifdef DSOUTH_PROF_DISABLED
  ScopedPhase(Profiler*, int, PhaseId) {}
#else
  ScopedPhase(Profiler* prof, int lane, PhaseId phase)
      : prof_(prof), lane_(lane), phase_(phase) {
    if (prof_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (prof_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const auto dur = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         end - start_)
                         .count();
    prof_->record(lane_, phase_, prof_->since_origin_ns(start_),
                  dur > 0 ? static_cast<std::uint64_t>(dur) : 0);
  }
#endif
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
#ifndef DSOUTH_PROF_DISABLED
  Profiler* prof_ = nullptr;
  int lane_ = 0;
  PhaseId phase_ = PhaseId::kStep;
  std::chrono::steady_clock::time_point start_{};
#endif
};

}  // namespace dsouth::prof
