/// \file alloc_hook.cpp
/// Interposing global operator new/delete pair feeding the
/// prof::alloc_hook counters. NOT part of the dsouth_prof library: a
/// replacement operator new only takes effect when its object file is
/// linked into the final binary, and pulling a no-undefined-symbol object
/// out of a static archive is linker-dependent — so targets opt in by
/// compiling this TU directly via `dsouth_enable_alloc_tracking(target)`
/// (src/prof/CMakeLists.txt). bench/scaling and tests/test_prof do.
///
/// The replacement pair routes through malloc/posix_memalign + free,
/// which is consistent, but GCC cannot see that once it inlines the
/// operators into callers and warns about new/free mismatches (the same
/// suppression tests/test_wire.cpp's counting pair needs).

#include <algorithm>
#include <cstdlib>
#include <new>

#include "prof/prof.hpp"

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
// Flips alloc_hook::available() exactly once, before main.
const bool g_hook_registered = [] {
  dsouth::prof::alloc_hook::detail::set_available();
  return true;
}();
}  // namespace

void* operator new(std::size_t n) {
  dsouth::prof::alloc_hook::detail::note_alloc(n);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  dsouth::prof::alloc_hook::detail::note_alloc(n);
  const std::size_t align =
      std::max(static_cast<std::size_t>(al), sizeof(void*));
  void* p = nullptr;
  if (::posix_memalign(&p, align, n ? n : 1) == 0) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept {
  dsouth::prof::alloc_hook::detail::note_free();
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
