#include "prof/prof.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/error.hpp"

namespace dsouth::prof {

const char* phase_name(PhaseId phase) {
  switch (phase) {
    case PhaseId::kStep: return "step";
    case PhaseId::kAbsorb: return "absorb";
    case PhaseId::kRelax: return "relax";
    case PhaseId::kEncode: return "encode";
    case PhaseId::kStage: return "stage";
    case PhaseId::kFence: return "fence";
    case PhaseId::kDeliveryPolicy: return "delivery_policy";
    case PhaseId::kNodePrepass: return "node_prepass";
    case PhaseId::kAnalysis: return "analysis";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Allocation counters. The interposing operator new/delete pair lives in a
// separate TU (alloc_hook.cpp) that targets opt into compiling in; these
// counters exist unconditionally so readers never need to know whether the
// hook is present. Relaxed atomics: the counters are monotonic tallies read
// only between runs, never synchronization points.

namespace alloc_hook {
namespace {
std::atomic<bool> g_available{false};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_frees{0};
}  // namespace

bool available() { return g_available.load(std::memory_order_relaxed); }
std::uint64_t allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}
std::uint64_t bytes() { return g_bytes.load(std::memory_order_relaxed); }
std::uint64_t frees() { return g_frees.load(std::memory_order_relaxed); }

namespace detail {
void note_alloc(std::uint64_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
}
void note_free() { g_frees.fetch_add(1, std::memory_order_relaxed); }
void set_available() { g_available.store(true, std::memory_order_relaxed); }
}  // namespace detail
}  // namespace alloc_hook

// ---------------------------------------------------------------------------

Profiler::Profiler(int num_ranks, std::size_t span_capacity)
    : num_ranks_(num_ranks),
      span_capacity_(span_capacity),
      origin_(std::chrono::steady_clock::now()) {
  DSOUTH_CHECK_MSG(num_ranks >= 1, "Profiler needs at least one rank lane");
  slots_.resize(static_cast<std::size_t>(num_lanes()) * kNumPhases);
  spans_.resize(static_cast<std::size_t>(num_lanes()));
}

void Profiler::record(int lane, PhaseId phase, std::uint64_t start_ns,
                      std::uint64_t dur_ns) {
  const auto slot = static_cast<std::size_t>(lane) * kNumPhases +
                    static_cast<std::size_t>(phase);
  PhaseStats& st = slots_[slot];
  ++st.count;
  st.total_ns += dur_ns;
  if (dur_ns > st.max_ns) st.max_ns = dur_ns;
  // bit_width can reach 64; the last bucket is a catch-all for spans too
  // long to have their own bucket (>= 2^40 ns).
  ++st.hist[std::min<std::size_t>(std::bit_width(dur_ns), kNumHistBuckets - 1)];
  if (span_capacity_ == 0) return;
  auto& log = spans_[static_cast<std::size_t>(lane)];
  if (log.size() < span_capacity_) {
    log.push_back(Span{phase, start_ns, dur_ns});
  } else {
    // The drop tally is the one slot shared across lanes, so it must be
    // atomic under the threaded backend; relaxed is enough (advisory,
    // exporters only report it).
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t Profiler::since_origin_ns(
    std::chrono::steady_clock::time_point tp) const {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - origin_)
          .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

const PhaseStats& Profiler::stats(int lane, PhaseId phase) const {
  return slots_[static_cast<std::size_t>(lane) * kNumPhases +
                static_cast<std::size_t>(phase)];
}

PhaseStats Profiler::lane_sum(PhaseId phase) const {
  PhaseStats sum;
  for (int lane = 0; lane < num_lanes(); ++lane) {
    const PhaseStats& st = stats(lane, phase);
    sum.count += st.count;
    sum.total_ns += st.total_ns;
    if (st.max_ns > sum.max_ns) sum.max_ns = st.max_ns;
    for (int b = 0; b < kNumHistBuckets; ++b) sum.hist[b] += st.hist[b];
  }
  return sum;
}

const std::vector<Profiler::Span>& Profiler::spans(int lane) const {
  return spans_[static_cast<std::size_t>(lane)];
}

void Profiler::begin_alloc_window() {
  alloc_base_allocs_ = alloc_hook::allocations();
  alloc_base_bytes_ = alloc_hook::bytes();
  alloc_base_frees_ = alloc_hook::frees();
}

void Profiler::end_alloc_window() {
  alloc_tracking_ = alloc_hook::available();
  allocs_total_ = alloc_hook::allocations() - alloc_base_allocs_;
  allocs_bytes_ = alloc_hook::bytes() - alloc_base_bytes_;
  frees_total_ = alloc_hook::frees() - alloc_base_frees_;
}

}  // namespace dsouth::prof
