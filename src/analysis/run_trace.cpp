#include "analysis/run_trace.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace dsouth::analysis {

using util::JsonValue;

double MetricSeries::total() const {
  double t = 0.0;
  for (double v : per_rank) t += v;
  return t;
}

const MetricSeries* RunTrace::find_metric(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

RunTrace from_trace_log(const trace::TraceLog& log, std::string label) {
  RunTrace run;
  run.label = std::move(label);
  run.num_ranks = log.num_ranks;
  run.dropped_events = log.dropped_events;
  run.events = log.events;
  const trace::MetricsRegistry& reg = log.metrics;
  run.metrics.reserve(reg.size());
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const auto id = static_cast<trace::MetricId>(i);
    run.metrics.push_back(
        MetricSeries{reg.name(id), reg.kind(id), reg.per_rank(id)});
  }
  return run;
}

namespace {

/// The JSONL versions this reader understands. Version 1 traces (pre
/// "compute" events) still parse; the critical-path report then sees zero
/// flops and says so (RunTrace::version lets callers warn). Version 3
/// adds "fault" events (fault injection, src/faults); version 4 adds
/// "deliver" events (asynchronous delivery, simmpi/delivery.hpp); version
/// 5 adds "hop" events (node-aware routing, simmpi/node_topology.hpp);
/// version 6 adds "elastic" events (checkpoint/restart + repartitioning,
/// src/elastic) — all picked up through the shared event-kind table in
/// parse_kind.
constexpr int kMinVersion = 1;
constexpr int kMaxVersion = 6;

trace::EventKind parse_kind(const std::string& name) {
  for (int k = 0; k < trace::kNumEventKinds; ++k) {
    const auto kind = static_cast<trace::EventKind>(k);
    if (name == trace::event_kind_name(kind)) return kind;
  }
  DSOUTH_CHECK_MSG(false, "JSONL trace: unknown event kind '" << name << "'");
  return trace::EventKind::kPut;  // unreachable
}

trace::MetricKind parse_metric_kind(const std::string& name) {
  if (name == trace::metric_kind_name(trace::MetricKind::kCounter)) {
    return trace::MetricKind::kCounter;
  }
  if (name == trace::metric_kind_name(trace::MetricKind::kGauge)) {
    return trace::MetricKind::kGauge;
  }
  DSOUTH_CHECK_MSG(false, "JSONL trace: unknown metric kind '" << name << "'");
  return trace::MetricKind::kCounter;  // unreachable
}

}  // namespace

std::vector<RunTrace> parse_jsonl(std::string_view text) {
  std::vector<RunTrace> runs;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string_view::npos ? text.size() : eol;
    std::string_view line = text.substr(pos, end - pos);
    pos = end + (eol == std::string_view::npos ? 0 : 1);
    ++line_no;
    // Skip blank lines (a concatenation of captures may leave them).
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;

    JsonValue v;
    try {
      v = util::parse_json(line);
    } catch (const util::CheckError& e) {
      DSOUTH_CHECK_MSG(false, "JSONL trace line " << line_no << ": "
                                                  << e.what());
    }
    const std::string& type = v.at("type").as_string();
    if (type == "header") {
      RunTrace run;
      run.version = static_cast<int>(v.at("version").as_int());
      DSOUTH_CHECK_MSG(
          run.version >= kMinVersion && run.version <= kMaxVersion,
          "JSONL trace: unsupported schema version " << run.version);
      run.num_ranks = static_cast<int>(v.at("num_ranks").as_int());
      DSOUTH_CHECK(run.num_ranks > 0);
      run.dropped_events =
          static_cast<std::uint64_t>(v.at("dropped_events").as_int());
      if (const JsonValue* label = v.find("run")) {
        run.label = label->as_string();
      }
      runs.push_back(std::move(run));
      continue;
    }
    DSOUTH_CHECK_MSG(!runs.empty(), "JSONL trace line "
                                        << line_no
                                        << ": '" << type
                                        << "' line before any header");
    RunTrace& run = runs.back();
    if (type == "event") {
      trace::Event e;
      e.kind = parse_kind(v.at("kind").as_string());
      e.seq = static_cast<std::uint64_t>(v.at("seq").as_int());
      e.epoch = static_cast<std::uint64_t>(v.at("epoch").as_int());
      e.rank = static_cast<std::int32_t>(v.at("rank").as_int());
      if (const JsonValue* peer = v.find("peer")) {
        e.peer = static_cast<std::int32_t>(peer->as_int());
      }
      if (const JsonValue* tag = v.find("tag")) {
        e.tag = static_cast<std::int32_t>(tag->as_int());
      }
      e.t_model = v.at("t_model").as_number();
      e.a0 = v.at("a0").as_number();
      e.a1 = v.at("a1").as_number();
      if (const JsonValue* wall = v.find("t_wall")) {
        e.t_wall = wall->as_number();
      }
      run.events.push_back(e);
    } else if (type == "metric") {
      MetricSeries m;
      m.name = v.at("name").as_string();
      m.kind = parse_metric_kind(v.at("metric_kind").as_string());
      const auto& slots = v.at("per_rank").as_array();
      DSOUTH_CHECK_MSG(
          slots.size() == static_cast<std::size_t>(run.num_ranks),
          "JSONL trace: metric '" << m.name << "' has " << slots.size()
                                  << " slots for " << run.num_ranks
                                  << " ranks");
      m.per_rank.reserve(slots.size());
      for (const auto& s : slots) m.per_rank.push_back(s.as_number());
      run.metrics.push_back(std::move(m));
    } else {
      DSOUTH_CHECK_MSG(false, "JSONL trace line " << line_no
                                                  << ": unknown type '"
                                                  << type << "'");
    }
  }
  for (const RunTrace& run : runs) {
    for (std::size_t i = 1; i < run.events.size(); ++i) {
      DSOUTH_CHECK_MSG(run.events[i - 1].seq < run.events[i].seq,
                       "JSONL trace: events out of seq order in run '"
                           << run.label << "'");
    }
  }
  return runs;
}

std::vector<RunTrace> read_jsonl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DSOUTH_CHECK_MSG(in.good(), "cannot open trace file '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_jsonl(buf.str());
}

}  // namespace dsouth::analysis
