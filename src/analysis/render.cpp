#include "analysis/render.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace dsouth::analysis {

using util::append_json_number;
using util::format_double;
using util::json_quote;

RunAnalysis analyze_run(const RunTrace& run, const AnalyzeOptions& opt) {
  RunAnalysis a;
  a.label = run.label;
  a.num_ranks = run.num_ranks;
  a.trace_version = run.version;
  a.dropped_events = run.dropped_events;
  a.timeline = analyze_timeline(run, opt.model);
  a.comm = analyze_comm_matrix(run);
  a.critical_path = analyze_critical_path(run, opt.model);
  a.convergence = analyze_convergence(run);
  a.faults = analyze_faults(run);
  a.async = analyze_async(run);
  a.node = analyze_node_routing(run);
  a.elastic = analyze_elastic(run);
  return a;
}

// ---------------------------------------------------------------------------
// ASCII
// ---------------------------------------------------------------------------

namespace {

std::string seconds_str(double s) { return format_double(s * 1e3, 4); }

const char* tag_name(int tag) {
  switch (static_cast<simmpi::MsgTag>(tag)) {
    case simmpi::MsgTag::kSolve:
      return "solve";
    case simmpi::MsgTag::kResidual:
      return "residual";
    case simmpi::MsgTag::kOther:
      return "other";
  }
  return "?";
}

}  // namespace

void render_ascii(std::ostream& os, const RunAnalysis& a,
                  const AnalyzeOptions& opt) {
  os << "=== dsouth-analyze: " << (a.label.empty() ? "(unnamed run)" : a.label)
     << " ===\n";
  os << "Ranks: " << a.num_ranks << "   fenced epochs: "
     << a.timeline.steps.size() << "   events analyzed from trace v"
     << a.trace_version << "\n";
  if (a.dropped_events > 0) {
    os << "WARNING: " << a.dropped_events
       << " events were dropped at capture (ring overflow); counts below "
          "are lower bounds and model reconstruction is approximate.\n";
  }

  // --- (a) timeline / load imbalance ---
  os << "\n--- Per-rank timeline (modeled ms) ---\n";
  util::Table tl({"Rank", "compute", "send", "wait", "relaxes", "rows",
                  "absorbs", "msgs_in", "msgs_out"});
  for (int r = 0; r < a.num_ranks; ++r) {
    const auto& rk = a.timeline.ranks[static_cast<std::size_t>(r)];
    tl.row().cell(static_cast<std::size_t>(r));
    tl.cell(seconds_str(rk.compute_seconds));
    tl.cell(seconds_str(rk.send_seconds));
    tl.cell(seconds_str(rk.wait_seconds));
    tl.cell(static_cast<std::size_t>(rk.relax_phases));
    tl.cell(static_cast<std::size_t>(rk.rows_relaxed));
    tl.cell(static_cast<std::size_t>(rk.absorb_phases));
    tl.cell(static_cast<std::size_t>(rk.absorbed_msgs));
    tl.cell(static_cast<std::size_t>(rk.msgs_sent));
  }
  tl.print(os);
  os << "Load imbalance (max busy / mean busy per epoch): max "
     << format_double(a.timeline.max_imbalance, 3) << ", mean "
     << format_double(a.timeline.mean_imbalance, 3) << " over "
     << a.timeline.steps.size() << " epochs; total modeled time "
     << format_double(a.timeline.total_model_seconds * 1e3, 4) << " ms\n";

  // --- (b) communication matrix ---
  os << "\n--- Communication (" << a.comm.total_msgs << " msgs, "
     << a.comm.total_bytes << " bytes) ---\n";
  os << "Comm cost (msgs/P): total "
     << format_double(a.comm.comm_cost(), 3);
  for (int t = 0; t < simmpi::kNumTags; ++t) {
    os << ", " << tag_name(t) << " "
       << format_double(
              a.comm.comm_cost(static_cast<simmpi::MsgTag>(t)), 3);
  }
  os << "\n";
  const auto top = static_cast<std::size_t>(std::max(0, opt.top_pairs));
  util::Table hot({"src", "dst", "msgs", "bytes"});
  for (std::size_t i = 0; i < a.comm.hot_pairs.size() && i < top; ++i) {
    const auto& pr = a.comm.hot_pairs[i];
    hot.row().cell(static_cast<std::size_t>(pr.src));
    hot.cell(static_cast<std::size_t>(pr.dst));
    hot.cell(static_cast<std::size_t>(pr.msgs));
    hot.cell(static_cast<std::size_t>(pr.bytes));
  }
  if (!a.comm.hot_pairs.empty()) {
    os << "Hottest " << std::min(top, a.comm.hot_pairs.size()) << " of "
       << a.comm.hot_pairs.size() << " communicating pairs:\n";
    hot.print(os);
  }

  // --- (e) injected faults (only for traces that carry fault events) ---
  if (a.faults.any()) {
    os << "\n--- Injected faults (" << a.faults.total << " events) ---\n";
    util::Table ft({"action", "count"});
    for (int t = 0; t < FaultReport::kNumActions; ++t) {
      const auto n = a.faults.by_action[static_cast<std::size_t>(t)];
      if (n == 0) continue;
      ft.row().cell(FaultReport::action_name(t));
      ft.cell(static_cast<std::size_t>(n));
    }
    ft.print(os);
    // Worst-hit source ranks (descending, ties to the lower rank).
    std::vector<int> worst(static_cast<std::size_t>(a.num_ranks));
    for (int r = 0; r < a.num_ranks; ++r) {
      worst[static_cast<std::size_t>(r)] = r;
    }
    std::sort(worst.begin(), worst.end(), [&](int x, int y) {
      const auto fx = a.faults.by_source[static_cast<std::size_t>(x)];
      const auto fy = a.faults.by_source[static_cast<std::size_t>(y)];
      if (fx != fy) return fx > fy;
      return x < y;
    });
    os << "Most-faulted source ranks:";
    const int fshow = std::min(a.num_ranks, 5);
    for (int i = 0; i < fshow; ++i) {
      const int r = worst[static_cast<std::size_t>(i)];
      const auto n = a.faults.by_source[static_cast<std::size_t>(r)];
      if (n == 0) break;
      os << " r" << r << "=" << n;
    }
    os << "\n";
  }

  // --- (f) async delivery (only for traces with deliver events) ---
  if (a.async.any()) {
    os << "\n--- Async delivery (" << a.async.delivered
       << " matured messages) ---\n";
    os << "Staleness (epochs from staging to delivery): mean "
       << format_double(a.async.mean_staleness(), 3) << ", max "
       << a.async.staleness_max << "\n";
    util::Table sh({"staleness", "deliveries"});
    for (std::size_t s = 0; s < a.async.staleness_histogram.size(); ++s) {
      sh.row().cell(s);
      sh.cell(static_cast<std::size_t>(a.async.staleness_histogram[s]));
    }
    sh.print(os);
  }

  // --- (g) node-aware routing (only for traces with hop events) ---
  if (a.node.any()) {
    os << "\n--- Node-aware routing (" << a.node.msgs_intra
       << " intra-node hops, " << a.node.msgs_inter
       << " inter-node hops) ---\n";
    os << "Tier bytes: intra " << a.node.bytes_intra << ", inter "
       << a.node.bytes_inter << "\n";
    util::Table nh({"hop", "count", "bytes"});
    for (int k = 0; k < NodeReport::kNumHopKinds; ++k) {
      const auto n = a.node.hops_by_kind[static_cast<std::size_t>(k)];
      if (n == 0) continue;
      nh.row().cell(NodeReport::hop_name(k));
      nh.cell(static_cast<std::size_t>(n));
      nh.cell(static_cast<std::size_t>(
          a.node.bytes_by_kind[static_cast<std::size_t>(k)]));
    }
    nh.print(os);
    const auto frames =
        a.node.hops_by_kind[static_cast<std::size_t>(trace::kHopInterLeader)];
    if (frames > 0) {
      os << "Leader forwarding: " << frames << " leader->leader messages "
         << "carried " << a.node.forwarded_records << " records\n";
      const auto ntop = static_cast<std::size_t>(std::max(0, opt.top_pairs));
      util::Table lp({"src leader", "dst leader", "frames", "records",
                      "bytes"});
      for (std::size_t i = 0;
           i < a.node.leader_pairs.size() && i < ntop; ++i) {
        const auto& pr = a.node.leader_pairs[i];
        lp.row().cell(static_cast<std::size_t>(pr.src));
        lp.cell(static_cast<std::size_t>(pr.dst));
        lp.cell(static_cast<std::size_t>(pr.frames));
        lp.cell(static_cast<std::size_t>(pr.records));
        lp.cell(static_cast<std::size_t>(pr.bytes));
      }
      lp.print(os);
    }
  }

  // --- (h) elastic recovery (only for traces with elastic events) ---
  if (a.elastic.any()) {
    os << "\n--- Elastic recovery (" << a.elastic.total << " events) ---\n";
    util::Table et({"action", "count"});
    for (int t = 0; t < ElasticReport::kNumActions; ++t) {
      const auto n = a.elastic.by_action[static_cast<std::size_t>(t)];
      if (n == 0) continue;
      et.row().cell(ElasticReport::action_name(t));
      et.cell(static_cast<std::size_t>(n));
    }
    et.print(os);
    os << "Checkpoints: last " << a.elastic.checkpoint_bytes_last
       << " bytes, max " << a.elastic.checkpoint_bytes_max << " bytes\n";
    if (!a.elastic.dead_ranks.empty()) {
      os << "Dead ranks (detection order):";
      for (int r : a.elastic.dead_ranks) os << " r" << r;
      os << "  (" << a.elastic.rows_moved << " rows redistributed)\n";
    }
  }

  // --- (c) critical path ---
  os << "\n--- Critical path (T_step = max_p(flops*c + msgs*a + bytes*b) + "
        "gamma*msgs/P + sigma"
     << (a.critical_path.tiered
             ? "; two-tier: inter hops at a/b, intra hops at a_intra/b_intra"
             : "")
     << ") ---\n";
  util::Table cp({"term", "seconds", "share", "epochs dominated"});
  const double tot = a.critical_path.total_recorded_seconds;
  const int num_terms =
      a.critical_path.tiered ? kNumCostTerms : kNumFlatCostTerms;
  for (int t = 0; t < num_terms; ++t) {
    const auto i = static_cast<std::size_t>(t);
    cp.row().cell(cost_term_name(static_cast<CostTerm>(t)));
    cp.cell(format_double(a.critical_path.total_seconds_by_term[i] * 1e3, 4) +
            " ms");
    cp.cell(tot > 0.0 ? format_double(
                            a.critical_path.total_seconds_by_term[i] / tot,
                            3)
                      : "0");
    cp.cell(static_cast<std::size_t>(a.critical_path.epochs_dominated[i]));
  }
  cp.print(os);
  os << "Model reconstruction: "
     << (a.critical_path.model_matches
             ? "every epoch matches the fence record bit-exactly"
             : "MISMATCH vs fence records (v1 trace without compute "
               "events, or dropped events?)")
     << "\n";
  // Straggler ranking: who was the max-cost rank most often.
  std::vector<int> order(static_cast<std::size_t>(a.num_ranks));
  for (int r = 0; r < a.num_ranks; ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    const auto sx =
        a.critical_path.straggler_epochs[static_cast<std::size_t>(x)];
    const auto sy =
        a.critical_path.straggler_epochs[static_cast<std::size_t>(y)];
    if (sx != sy) return sx > sy;
    return x < y;
  });
  os << "Straggler ranks (epochs on the critical path):";
  const int show = std::min(a.num_ranks, 5);
  for (int i = 0; i < show; ++i) {
    const int r = order[static_cast<std::size_t>(i)];
    const auto n =
        a.critical_path.straggler_epochs[static_cast<std::size_t>(r)];
    if (n == 0) break;
    os << " r" << r << "=" << n;
  }
  os << "\n";
  if (a.async.any()) {
    // Non-fence delivery context: how much of the path ran on data that
    // matured late (sent in an earlier epoch than it took effect).
    std::uint64_t late_epochs = 0;
    for (const auto& s : a.critical_path.steps) {
      if (s.async_delivered > 0 && s.async_staleness_max > 0) ++late_epochs;
    }
    os << "Async arrivals: " << late_epochs << " of "
       << a.critical_path.steps.size()
       << " epochs consumed data staged in an earlier epoch\n";
  }

  // --- (d) convergence ---
  os << "\n--- Convergence (trace-side residual estimate) ---\n";
  if (a.convergence.points.empty()) {
    os << "(no fenced epochs)\n";
    return;
  }
  os << "Stalled epochs (no relaxation anywhere): "
     << a.convergence.stalled_epochs << " of " << a.convergence.points.size();
  if (!a.convergence.stalls.empty()) {
    os << "  [";
    for (std::size_t i = 0; i < a.convergence.stalls.size(); ++i) {
      const auto& st = a.convergence.stalls[i];
      if (i) os << ", ";
      os << st.first_epoch << "-" << st.last_epoch;
    }
    os << "]";
  }
  os << "\n";
  if (a.convergence.ds_corrections_sent || a.convergence.ds_deferred_sends) {
    os << "Distributed Southwell counters: corrections_sent "
       << format_double(a.convergence.ds_corrections_sent.value_or(0.0), 0)
       << ", deferred_sends "
       << format_double(a.convergence.ds_deferred_sends.value_or(0.0), 0);
    if (a.convergence.max_deferral_rank) {
      os << " (max at rank " << *a.convergence.max_deferral_rank << ")";
    }
    os << "\n";
  }
  util::PlotSeries series;
  series.name = "||r|| est";
  for (const auto& pt : a.convergence.points) {
    if (pt.residual_estimate > 0.0 && pt.t_model > 0.0) {
      series.x.push_back(pt.t_model * 1e3);
      series.y.push_back(pt.residual_estimate);
    }
  }
  if (series.x.size() >= 2) {
    os << "Residual estimate vs modeled time (ms), log y:\n";
    util::PlotOptions popt;
    popt.height = 14;
    popt.log_y = true;
    popt.x_label = "model ms";
    popt.y_label = "sqrt(sum_p last ||r_p||^2)";
    util::render_plot(os, {series}, popt);
  } else {
    os << "(too few positive residual samples to plot)\n";
  }
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

namespace {

void csv_num(std::string& out, double v, int precision = 12) {
  out += format_double(v, precision);
}

}  // namespace

std::string timeline_csv(const RunAnalysis& a) {
  std::string out =
      "rank,compute_seconds,send_seconds,wait_seconds,relax_phases,"
      "rows_relaxed,absorb_phases,absorbed_msgs,msgs_sent\n";
  for (int r = 0; r < a.num_ranks; ++r) {
    const auto& rk = a.timeline.ranks[static_cast<std::size_t>(r)];
    out += std::to_string(r);
    out += ',';
    csv_num(out, rk.compute_seconds);
    out += ',';
    csv_num(out, rk.send_seconds);
    out += ',';
    csv_num(out, rk.wait_seconds);
    out += ',';
    out += std::to_string(rk.relax_phases);
    out += ',';
    out += std::to_string(rk.rows_relaxed);
    out += ',';
    out += std::to_string(rk.absorb_phases);
    out += ',';
    out += std::to_string(rk.absorbed_msgs);
    out += ',';
    out += std::to_string(rk.msgs_sent);
    out += '\n';
  }
  return out;
}

std::string steps_csv(const RunAnalysis& a) {
  std::string out =
      "epoch,epoch_seconds,max_cost,mean_cost,imbalance,straggler\n";
  for (const auto& s : a.timeline.steps) {
    out += std::to_string(s.epoch);
    out += ',';
    csv_num(out, s.epoch_seconds);
    out += ',';
    csv_num(out, s.max_cost);
    out += ',';
    csv_num(out, s.mean_cost);
    out += ',';
    csv_num(out, s.imbalance());
    out += ',';
    out += std::to_string(s.straggler);
    out += '\n';
  }
  return out;
}

std::string comm_matrix_csv(const RunAnalysis& a) {
  std::string out = "src,dst,msgs,bytes,msgs_solve,msgs_residual,msgs_other\n";
  // `pairs` is (src, dst) ascending — the same order the dense row-major
  // scan used to emit nonzero cells in, so the CSV is byte-identical.
  for (const auto& cell : a.comm.pairs) {
    out += std::to_string(cell.src);
    out += ',';
    out += std::to_string(cell.dst);
    out += ',';
    out += std::to_string(cell.msgs);
    out += ',';
    out += std::to_string(cell.bytes);
    for (int t = 0; t < simmpi::kNumTags; ++t) {
      out += ',';
      out += std::to_string(cell.msgs_by_tag[static_cast<std::size_t>(t)]);
    }
    out += '\n';
  }
  return out;
}

std::string critical_path_csv(const RunAnalysis& a) {
  // The two intra-tier columns appear only for node-aware (tiered) traces,
  // keeping single-level CSV byte-identical to the pre-tier schema.
  const bool tiered = a.critical_path.tiered;
  const int num_terms = tiered ? kNumCostTerms : kNumFlatCostTerms;
  std::string out =
      tiered ? "epoch,straggler,compute,latency,bandwidth,network,sync,"
               "latency_intra,bandwidth_intra,"
               "recorded_seconds,modeled_seconds,dominant\n"
             : "epoch,straggler,compute,latency,bandwidth,network,sync,"
               "recorded_seconds,modeled_seconds,dominant\n";
  for (const auto& s : a.critical_path.steps) {
    out += std::to_string(s.epoch);
    out += ',';
    out += std::to_string(s.straggler);
    for (int t = 0; t < num_terms; ++t) {
      out += ',';
      csv_num(out, s.terms[static_cast<std::size_t>(t)]);
    }
    out += ',';
    csv_num(out, s.recorded_seconds);
    out += ',';
    csv_num(out, s.modeled_seconds);
    out += ',';
    out += cost_term_name(s.dominant);
    out += '\n';
  }
  return out;
}

std::string convergence_csv(const RunAnalysis& a) {
  std::string out =
      "epoch,t_model,residual_estimate,ranks_reporting,relax_events,msgs\n";
  for (const auto& pt : a.convergence.points) {
    out += std::to_string(pt.epoch);
    out += ',';
    csv_num(out, pt.t_model);
    out += ',';
    csv_num(out, pt.residual_estimate);
    out += ',';
    out += std::to_string(pt.ranks_reporting);
    out += ',';
    out += std::to_string(pt.relax_events);
    out += ',';
    out += std::to_string(pt.msgs);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

namespace {

void kv(std::string& out, const char* key, double v, bool first = false) {
  if (!first) out += ',';
  out += json_quote(key);
  out += ':';
  append_json_number(out, v);
}

void kv_u(std::string& out, const char* key, std::uint64_t v,
          bool first = false) {
  if (!first) out += ',';
  out += json_quote(key);
  out += ':';
  out += std::to_string(v);
}

void kv_i(std::string& out, const char* key, std::int64_t v,
          bool first = false) {
  if (!first) out += ',';
  out += json_quote(key);
  out += ':';
  out += std::to_string(v);
}

void kv_s(std::string& out, const char* key, const std::string& v,
          bool first = false) {
  if (!first) out += ',';
  out += json_quote(key);
  out += ':';
  out += json_quote(v);
}

}  // namespace

std::string to_json(const RunAnalysis& a, const AnalyzeOptions& opt) {
  std::string out;
  out.reserve(1 << 14);
  out += "{";
  kv_s(out, "schema", "dsouth.analysis", /*first=*/true);
  kv_i(out, "schema_version", 1);
  kv_s(out, "run", a.label);
  kv_i(out, "num_ranks", a.num_ranks);
  kv_i(out, "trace_version", a.trace_version);
  kv_u(out, "dropped_events", a.dropped_events);

  // model parameters the attribution used; the intra-tier pair appears
  // only for node-aware (tiered) traces so single-level JSON is unchanged
  out += ",\"machine_model\":{";
  kv(out, "alpha", opt.model.alpha, true);
  kv(out, "beta", opt.model.beta);
  kv(out, "flop_time", opt.model.flop_time);
  kv(out, "gamma", opt.model.gamma);
  kv(out, "sigma", opt.model.sigma);
  if (a.critical_path.tiered) {
    kv(out, "alpha_intra", opt.model.alpha_intra);
    kv(out, "beta_intra", opt.model.beta_intra);
  }
  out += "}";

  // (a) timeline
  out += ",\"timeline\":{";
  kv(out, "total_model_seconds", a.timeline.total_model_seconds, true);
  kv(out, "max_imbalance", a.timeline.max_imbalance);
  kv(out, "mean_imbalance", a.timeline.mean_imbalance);
  kv_u(out, "epochs", a.timeline.steps.size());
  out += ",\"ranks\":[";
  for (int r = 0; r < a.num_ranks; ++r) {
    const auto& rk = a.timeline.ranks[static_cast<std::size_t>(r)];
    if (r) out += ',';
    out += '{';
    kv_i(out, "rank", r, true);
    kv(out, "compute_seconds", rk.compute_seconds);
    kv(out, "send_seconds", rk.send_seconds);
    kv(out, "wait_seconds", rk.wait_seconds);
    kv_u(out, "relax_phases", rk.relax_phases);
    kv_u(out, "rows_relaxed", rk.rows_relaxed);
    kv_u(out, "absorb_phases", rk.absorb_phases);
    kv_u(out, "absorbed_msgs", rk.absorbed_msgs);
    kv_u(out, "msgs_sent", rk.msgs_sent);
    out += '}';
  }
  out += "]}";

  // (b) comm matrix (sparse: nonzero entries only)
  out += ",\"comm_matrix\":{";
  kv_u(out, "total_msgs", a.comm.total_msgs, true);
  kv_u(out, "total_bytes", a.comm.total_bytes);
  kv(out, "comm_cost", a.comm.comm_cost());
  for (int t = 0; t < simmpi::kNumTags; ++t) {
    const std::string key =
        std::string("msgs_") +
        (t == 0 ? "solve" : t == 1 ? "residual" : "other");
    kv_u(out, key.c_str(),
         a.comm.total_by_tag[static_cast<std::size_t>(t)]);
  }
  out += ",\"pairs\":[";
  for (std::size_t i = 0; i < a.comm.hot_pairs.size(); ++i) {
    const auto& pr = a.comm.hot_pairs[i];
    if (i) out += ',';
    out += '{';
    kv_i(out, "src", pr.src, true);
    kv_i(out, "dst", pr.dst);
    kv_u(out, "msgs", pr.msgs);
    kv_u(out, "bytes", pr.bytes);
    out += '}';
  }
  out += "]}";

  // (c) critical path
  out += ",\"critical_path\":{";
  kv(out, "total_recorded_seconds", a.critical_path.total_recorded_seconds,
     true);
  kv(out, "total_modeled_seconds", a.critical_path.total_modeled_seconds);
  out += ",\"model_matches\":";
  out += a.critical_path.model_matches ? "true" : "false";
  // Intra-tier terms appear only for tiered traces (byte-identity for
  // single-level analysis JSON).
  const int num_terms =
      a.critical_path.tiered ? kNumCostTerms : kNumFlatCostTerms;
  out += ",\"terms\":{";
  for (int t = 0; t < num_terms; ++t) {
    const auto i = static_cast<std::size_t>(t);
    if (t) out += ',';
    out += json_quote(cost_term_name(static_cast<CostTerm>(t)));
    out += ":{";
    kv(out, "seconds", a.critical_path.total_seconds_by_term[i], true);
    kv_u(out, "epochs_dominated", a.critical_path.epochs_dominated[i]);
    out += '}';
  }
  out += "},\"straggler_epochs\":[";
  for (int r = 0; r < a.num_ranks; ++r) {
    if (r) out += ',';
    out += std::to_string(
        a.critical_path.straggler_epochs[static_cast<std::size_t>(r)]);
  }
  out += "],\"steps\":[";
  for (std::size_t i = 0; i < a.critical_path.steps.size(); ++i) {
    const auto& s = a.critical_path.steps[i];
    if (i) out += ',';
    out += '{';
    kv_u(out, "epoch", s.epoch, true);
    kv_i(out, "straggler", s.straggler);
    for (int t = 0; t < num_terms; ++t) {
      kv(out, cost_term_name(static_cast<CostTerm>(t)),
         s.terms[static_cast<std::size_t>(t)]);
    }
    kv(out, "recorded_seconds", s.recorded_seconds);
    kv(out, "modeled_seconds", s.modeled_seconds);
    kv_s(out, "dominant", cost_term_name(s.dominant));
    if (a.async.any()) {
      // Per-step non-fence delivery; keys appear only for async traces so
      // bulk-synchronous JSON stays byte-identical.
      kv_u(out, "async_delivered", s.async_delivered);
      kv_u(out, "async_staleness_max", s.async_staleness_max);
    }
    out += '}';
  }
  out += "]}";

  // (d) convergence
  out += ",\"convergence\":{";
  kv_u(out, "stalled_epochs", a.convergence.stalled_epochs, true);
  if (a.convergence.ds_corrections_sent) {
    kv(out, "ds_corrections_sent", *a.convergence.ds_corrections_sent);
  }
  if (a.convergence.ds_deferred_sends) {
    kv(out, "ds_deferred_sends", *a.convergence.ds_deferred_sends);
  }
  if (a.convergence.max_deferral_rank) {
    kv_i(out, "max_deferral_rank", *a.convergence.max_deferral_rank);
  }
  out += ",\"stalls\":[";
  for (std::size_t i = 0; i < a.convergence.stalls.size(); ++i) {
    const auto& st = a.convergence.stalls[i];
    if (i) out += ',';
    out += '{';
    kv_u(out, "first_epoch", st.first_epoch, true);
    kv_u(out, "last_epoch", st.last_epoch);
    out += '}';
  }
  out += "],\"points\":[";
  for (std::size_t i = 0; i < a.convergence.points.size(); ++i) {
    const auto& pt = a.convergence.points[i];
    if (i) out += ',';
    out += '{';
    kv_u(out, "epoch", pt.epoch, true);
    kv(out, "t_model", pt.t_model);
    kv(out, "residual_estimate", pt.residual_estimate);
    kv_i(out, "ranks_reporting", pt.ranks_reporting);
    kv_u(out, "relax_events", pt.relax_events);
    kv_u(out, "msgs", pt.msgs);
    out += '}';
  }
  out += "]}";

  // (e) faults — emitted only when the trace carried fault events, so
  // fault-free analysis JSON is byte-identical to the previous schema.
  if (a.faults.any()) {
    out += ",\"faults\":{";
    kv_u(out, "total", a.faults.total, true);
    for (int t = 0; t < FaultReport::kNumActions; ++t) {
      kv_u(out, FaultReport::action_name(t),
           a.faults.by_action[static_cast<std::size_t>(t)]);
    }
    out += ",\"by_source\":[";
    for (int r = 0; r < a.num_ranks; ++r) {
      if (r) out += ',';
      out += std::to_string(a.faults.by_source[static_cast<std::size_t>(r)]);
    }
    out += ']';
    if (a.faults.metric_dropped) {
      kv(out, "metric_dropped", *a.faults.metric_dropped);
    }
    if (a.faults.metric_duplicated) {
      kv(out, "metric_duplicated", *a.faults.metric_duplicated);
    }
    if (a.faults.metric_corrupted) {
      kv(out, "metric_corrupted", *a.faults.metric_corrupted);
    }
    if (a.faults.metric_reordered) {
      kv(out, "metric_reordered", *a.faults.metric_reordered);
    }
    out += '}';
  }

  // (f) async delivery — likewise emitted only when the trace carried
  // deliver events, so bulk-synchronous analysis JSON stays byte-identical.
  if (a.async.any()) {
    out += ",\"async\":{";
    kv_u(out, "delivered", a.async.delivered, true);
    kv_u(out, "staleness_sum", a.async.staleness_sum);
    kv_u(out, "staleness_max", a.async.staleness_max);
    kv(out, "mean_staleness", a.async.mean_staleness());
    out += ",\"staleness_histogram\":[";
    for (std::size_t s = 0; s < a.async.staleness_histogram.size(); ++s) {
      if (s) out += ',';
      out += std::to_string(a.async.staleness_histogram[s]);
    }
    out += "],\"by_dest\":[";
    for (int r = 0; r < a.num_ranks; ++r) {
      if (r) out += ',';
      out += std::to_string(a.async.by_dest[static_cast<std::size_t>(r)]);
    }
    out += ']';
    if (a.async.metric_delivered) {
      kv(out, "metric_delivered", *a.async.metric_delivered);
    }
    if (a.async.metric_staleness_sum) {
      kv(out, "metric_staleness_sum", *a.async.metric_staleness_sum);
    }
    if (a.async.metric_staleness_max) {
      kv(out, "metric_staleness_max", *a.async.metric_staleness_max);
    }
    out += '}';
  }

  // (g) node-aware routing — likewise emitted only when the trace carried
  // hop events, so single-level analysis JSON stays byte-identical.
  if (a.node.any()) {
    out += ",\"node\":{";
    kv_u(out, "msgs_intra", a.node.msgs_intra, true);
    kv_u(out, "bytes_intra", a.node.bytes_intra);
    kv_u(out, "msgs_inter", a.node.msgs_inter);
    kv_u(out, "bytes_inter", a.node.bytes_inter);
    kv_u(out, "forwarded_records", a.node.forwarded_records);
    out += ",\"hops\":{";
    for (int k = 0; k < NodeReport::kNumHopKinds; ++k) {
      const auto i = static_cast<std::size_t>(k);
      if (k) out += ',';
      out += json_quote(NodeReport::hop_name(k));
      out += ":{";
      kv_u(out, "count", a.node.hops_by_kind[i], true);
      kv_u(out, "bytes", a.node.bytes_by_kind[i]);
      out += '}';
    }
    out += "},\"leader_pairs\":[";
    const auto ntop = static_cast<std::size_t>(std::max(0, opt.top_pairs));
    for (std::size_t i = 0;
         i < a.node.leader_pairs.size() && i < ntop; ++i) {
      const auto& pr = a.node.leader_pairs[i];
      if (i) out += ',';
      out += '{';
      kv_i(out, "src", pr.src, true);
      kv_i(out, "dst", pr.dst);
      kv_u(out, "frames", pr.frames);
      kv_u(out, "records", pr.records);
      kv_u(out, "bytes", pr.bytes);
      out += '}';
    }
    out += ']';
    if (a.node.metric_msgs_intra) {
      kv(out, "metric_msgs_intra", *a.node.metric_msgs_intra);
    }
    if (a.node.metric_bytes_intra) {
      kv(out, "metric_bytes_intra", *a.node.metric_bytes_intra);
    }
    if (a.node.metric_msgs_inter) {
      kv(out, "metric_msgs_inter", *a.node.metric_msgs_inter);
    }
    if (a.node.metric_bytes_inter) {
      kv(out, "metric_bytes_inter", *a.node.metric_bytes_inter);
    }
    if (a.node.metric_forward_frames) {
      kv(out, "metric_forward_frames", *a.node.metric_forward_frames);
    }
    if (a.node.metric_forwarded_records) {
      kv(out, "metric_forwarded_records", *a.node.metric_forwarded_records);
    }
    out += '}';
  }

  // (h) elastic recovery — likewise emitted only when the trace carried
  // elastic events, so kill-free analysis JSON stays byte-identical.
  if (a.elastic.any()) {
    out += ",\"elastic\":{";
    kv_u(out, "total", a.elastic.total, true);
    for (int t = 0; t < ElasticReport::kNumActions; ++t) {
      kv_u(out, ElasticReport::action_name(t),
           a.elastic.by_action[static_cast<std::size_t>(t)]);
    }
    kv_u(out, "checkpoint_bytes_last", a.elastic.checkpoint_bytes_last);
    kv_u(out, "checkpoint_bytes_max", a.elastic.checkpoint_bytes_max);
    kv_u(out, "rows_moved", a.elastic.rows_moved);
    out += ",\"dead_ranks\":[";
    for (std::size_t i = 0; i < a.elastic.dead_ranks.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(a.elastic.dead_ranks[i]);
    }
    out += "]}";
  }
  out += '}';
  return out;
}

}  // namespace dsouth::analysis
