#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace dsouth::analysis {

namespace {

/// Per-(rank, epoch) accumulators, rebuilt the way the runtime builds its
/// own per-epoch counters: walk the stream in seq order, add each event to
/// its recording rank's slot, and close the epoch at the fence event. The
/// stream's merge order (rank-ascending, FIFO per rank within an epoch)
/// makes the floating-point flop sums reproduce the runtime's bit-exactly.
struct EpochScan {
  struct RankSlot {
    double flops = 0.0;
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    // Physical-hop tier accumulators (version-5 node-aware traces; see
    // tiered below). Filled from "hop" events; zero otherwise.
    std::uint64_t msgs_intra = 0;
    std::uint64_t bytes_intra = 0;
    std::uint64_t msgs_inter = 0;
    std::uint64_t bytes_inter = 0;
  };

  std::vector<RankSlot> slots;
  /// True when the trace carries hop events: the runtime then charged the
  /// machine model per physical hop (rank_cost_tiered), with puts only
  /// contributing the logical view, so cost rebuilds must read the hop
  /// accumulators instead of the put ones. A whole-trace property — the
  /// topology is attached for the full run.
  bool tiered = false;

  explicit EpochScan(const RunTrace& run)
      : slots(static_cast<std::size_t>(run.num_ranks)) {
    for (const trace::Event& e : run.events) {
      if (e.kind == trace::EventKind::kHop) {
        tiered = true;
        break;
      }
    }
  }

  void add(const trace::Event& e) {
    DSOUTH_CHECK(e.rank >= 0 &&
                 e.rank < static_cast<std::int32_t>(slots.size()));
    RankSlot& s = slots[static_cast<std::size_t>(e.rank)];
    switch (e.kind) {
      case trace::EventKind::kCompute:
        s.flops += e.a0;
        break;
      case trace::EventKind::kPut:
        s.msgs += 1;
        s.bytes += static_cast<std::uint64_t>(e.a1);
        break;
      case trace::EventKind::kHop:
        if (trace::hop_is_inter(e.tag)) {
          s.msgs_inter += 1;
          s.bytes_inter += static_cast<std::uint64_t>(e.a0);
        } else {
          s.msgs_intra += 1;
          s.bytes_intra += static_cast<std::uint64_t>(e.a0);
        }
        break;
      default:
        break;
    }
  }

  /// The rank's modeled busy cost, matching the runtime's charging path
  /// for this trace (rank_cost_tiered under a topology, rank_cost
  /// otherwise). Integer hop tallies make the tiered rebuild
  /// order-independent, so both paths land on the fence's doubles
  /// bit-exactly.
  double rank_cost(const simmpi::MachineModel& model,
                   const RankSlot& s) const {
    if (tiered) {
      return model.rank_cost_tiered(s.flops, s.msgs_intra, s.bytes_intra,
                                    s.msgs_inter, s.bytes_inter);
    }
    return model.rank_cost(s.flops, s.msgs, s.bytes);
  }

  /// The rank's physical messages this epoch (the fence's γ-term count).
  std::uint64_t physical_msgs(const RankSlot& s) const {
    return tiered ? s.msgs_intra + s.msgs_inter : s.msgs;
  }

  void reset() {
    for (RankSlot& s : slots) s = RankSlot{};
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// (a) Timeline
// ---------------------------------------------------------------------------

TimelineReport analyze_timeline(const RunTrace& run,
                                const simmpi::MachineModel& model) {
  DSOUTH_CHECK(run.num_ranks > 0);
  const int p = run.num_ranks;
  TimelineReport rep;
  rep.num_ranks = p;
  rep.ranks.resize(static_cast<std::size_t>(p));

  EpochScan scan(run);
  for (const trace::Event& e : run.events) {
    if (e.kind == trace::EventKind::kFence) {
      // Close the epoch: charge each rank its busy split and the shared
      // wait remainder, and record the step's balance numbers.
      TimelineReport::Step step;
      step.epoch = e.epoch;
      step.epoch_seconds = e.a0;
      double sum_cost = 0.0;
      for (int r = 0; r < p; ++r) {
        const auto& s = scan.slots[static_cast<std::size_t>(r)];
        const double cost = scan.rank_cost(model, s);
        sum_cost += cost;
        if (cost > step.max_cost) {
          step.max_cost = cost;
          step.straggler = r;
        }
        auto& acc = rep.ranks[static_cast<std::size_t>(r)];
        acc.compute_seconds += s.flops * model.flop_time;
        if (scan.tiered) {
          // Tiered traces pay per physical hop: inter-node hops at the
          // headline α/β, intra-node hops at the intra tier.
          acc.send_seconds +=
              static_cast<double>(s.msgs_inter) * model.alpha +
              static_cast<double>(s.bytes_inter) * model.beta +
              static_cast<double>(s.msgs_intra) * model.alpha_intra +
              static_cast<double>(s.bytes_intra) * model.beta_intra;
        } else {
          acc.send_seconds += static_cast<double>(s.msgs) * model.alpha +
                              static_cast<double>(s.bytes) * model.beta;
        }
        acc.wait_seconds += step.epoch_seconds - cost;
      }
      step.mean_cost = sum_cost / static_cast<double>(p);
      if (step.max_cost == 0.0) step.straggler = -1;  // all-idle epoch
      rep.total_model_seconds += step.epoch_seconds;
      rep.steps.push_back(step);
      scan.reset();
      continue;
    }
    scan.add(e);
    auto& acc = rep.ranks[static_cast<std::size_t>(e.rank)];
    switch (e.kind) {
      case trace::EventKind::kRelax:
        acc.relax_phases += 1;
        acc.rows_relaxed += static_cast<std::uint64_t>(e.a0);
        break;
      case trace::EventKind::kAbsorb:
        acc.absorb_phases += 1;
        acc.absorbed_msgs += static_cast<std::uint64_t>(e.a0);
        break;
      case trace::EventKind::kPut:
        acc.msgs_sent += 1;
        break;
      default:
        break;
    }
  }

  if (!rep.steps.empty()) {
    double sum = 0.0;
    double mx = 0.0;
    for (const auto& s : rep.steps) {
      sum += s.imbalance();
      mx = std::max(mx, s.imbalance());
    }
    rep.max_imbalance = mx;
    rep.mean_imbalance = sum / static_cast<double>(rep.steps.size());
  }
  return rep;
}

// ---------------------------------------------------------------------------
// (b) Communication matrix
// ---------------------------------------------------------------------------

double CommMatrixReport::comm_cost() const {
  return static_cast<double>(total_msgs) / static_cast<double>(num_ranks);
}

double CommMatrixReport::comm_cost(simmpi::MsgTag tag) const {
  return static_cast<double>(total_by_tag[static_cast<std::size_t>(tag)]) /
         static_cast<double>(num_ranks);
}

const CommMatrixReport::Pair* CommMatrixReport::find(int src, int dst) const {
  // `pairs` is sorted (src, dst) ascending.
  const auto it = std::lower_bound(
      pairs.begin(), pairs.end(), std::pair<int, int>(src, dst),
      [](const Pair& a, const std::pair<int, int>& key) {
        if (a.src != key.first) return a.src < key.first;
        return a.dst < key.second;
      });
  if (it == pairs.end() || it->src != src || it->dst != dst) return nullptr;
  return &*it;
}

CommMatrixReport analyze_comm_matrix(const RunTrace& run) {
  DSOUTH_CHECK(run.num_ranks > 0);
  const int p = run.num_ranks;
  CommMatrixReport rep;
  rep.num_ranks = p;

  // Output-sensitive build: index touched (src, dst) cells in a flat
  // linear-probe table during the one event scan instead of materialising
  // the dense P×P matrix. DS only talks to graph neighbors, so this is
  // O(events + pairs), where the dense build's P² allocation and scan made
  // analysis bytes scale ~P² (bench/scaling). A flat table rather than
  // std::unordered_map because the map's one node allocation per pair
  // would put the analysis alloc *count* on an O(pairs)-growth curve of
  // its own; probing keeps it at a handful of geometric regrowths.
  constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};  // src has no
                                                           // sign bit
  const auto hash_key = [](std::uint64_t k) {
    k ^= k >> 33U;
    k *= 0xff51afd7ed558ccdULL;  // SplitMix64-style finalizer
    k ^= k >> 33U;
    return k;
  };
  std::vector<std::uint64_t> slot_key(64, kEmptySlot);
  std::vector<std::uint32_t> slot_idx(64);
  const auto find_slot = [&hash_key](const std::vector<std::uint64_t>& keys,
                                     std::uint64_t key) {
    const std::uint64_t mask = keys.size() - 1;  // size is a power of two
    std::size_t i = static_cast<std::size_t>(hash_key(key) & mask);
    while (keys[i] != kEmptySlot && keys[i] != key) {
      i = (i + 1) & mask;
    }
    return i;
  };

  for (const trace::Event& e : run.events) {
    if (e.kind != trace::EventKind::kPut) continue;
    DSOUTH_CHECK(e.rank >= 0 && e.rank < p && e.peer >= 0 && e.peer < p);
    DSOUTH_CHECK(e.tag >= 0 && e.tag < simmpi::kNumTags);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.rank) << 32U) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.peer));
    if (2 * (rep.pairs.size() + 1) > slot_key.size()) {
      // Keep load factor ≤ 1/2: double and rehash.
      std::vector<std::uint64_t> grown_key(slot_key.size() * 2, kEmptySlot);
      std::vector<std::uint32_t> grown_idx(grown_key.size());
      for (std::size_t i = 0; i < slot_key.size(); ++i) {
        if (slot_key[i] == kEmptySlot) continue;
        const std::size_t j = find_slot(grown_key, slot_key[i]);
        grown_key[j] = slot_key[i];
        grown_idx[j] = slot_idx[i];
      }
      slot_key.swap(grown_key);
      slot_idx.swap(grown_idx);
    }
    const std::size_t slot = find_slot(slot_key, key);
    if (slot_key[slot] == kEmptySlot) {
      slot_key[slot] = key;
      slot_idx[slot] = static_cast<std::uint32_t>(rep.pairs.size());
      CommMatrixReport::Pair cell;
      cell.src = e.rank;
      cell.dst = e.peer;
      rep.pairs.push_back(cell);
    }
    auto& cell = rep.pairs[slot_idx[slot]];
    const auto bytes = static_cast<std::uint64_t>(e.a1);
    cell.msgs += 1;
    cell.bytes += bytes;
    cell.msgs_by_tag[static_cast<std::size_t>(e.tag)] += 1;
    rep.total_msgs += 1;
    rep.total_bytes += bytes;
    rep.total_by_tag[static_cast<std::size_t>(e.tag)] += 1;
  }

  // (src, dst) ascending — exactly the order the old dense row-major scan
  // emitted nonzero cells in, so comm_matrix_csv stays byte-identical.
  std::sort(rep.pairs.begin(), rep.pairs.end(),
            [](const CommMatrixReport::Pair& a,
               const CommMatrixReport::Pair& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  rep.hot_pairs = rep.pairs;
  std::sort(rep.hot_pairs.begin(), rep.hot_pairs.end(),
            [](const CommMatrixReport::Pair& a,
               const CommMatrixReport::Pair& b) {
              if (a.msgs != b.msgs) return a.msgs > b.msgs;
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return rep;
}

// ---------------------------------------------------------------------------
// (c) Critical path
// ---------------------------------------------------------------------------

const char* cost_term_name(CostTerm term) {
  switch (term) {
    case CostTerm::kCompute:
      return "compute";
    case CostTerm::kLatency:
      return "latency";
    case CostTerm::kBandwidth:
      return "bandwidth";
    case CostTerm::kNetwork:
      return "network";
    case CostTerm::kSync:
      return "sync";
    case CostTerm::kLatencyIntra:
      return "latency_intra";
    case CostTerm::kBandwidthIntra:
      return "bandwidth_intra";
  }
  return "?";
}

CriticalPathReport analyze_critical_path(const RunTrace& run,
                                         const simmpi::MachineModel& model) {
  DSOUTH_CHECK(run.num_ranks > 0);
  const int p = run.num_ranks;
  CriticalPathReport rep;
  rep.num_ranks = p;
  rep.straggler_epochs.assign(static_cast<std::size_t>(p), 0);
  rep.model_matches = true;

  EpochScan scan(run);
  rep.tiered = scan.tiered;
  std::uint64_t epoch_delivered = 0;
  std::uint64_t epoch_staleness_max = 0;
  for (const trace::Event& e : run.events) {
    if (e.kind != trace::EventKind::kFence) {
      // Non-fence delivery (version-4 traces): a deliver event marks data
      // maturing this epoch whose send cost was charged when it was put —
      // tallied per step so the attribution can point at stale arrivals.
      if (e.kind == trace::EventKind::kDeliver) {
        epoch_delivered += 1;
        epoch_staleness_max =
            std::max(epoch_staleness_max, static_cast<std::uint64_t>(e.a0));
      }
      scan.add(e);
      continue;
    }
    CriticalPathReport::Step step;
    step.epoch = e.epoch;
    step.recorded_seconds = e.a0;
    step.async_delivered = epoch_delivered;
    step.async_staleness_max = epoch_staleness_max;
    epoch_delivered = 0;
    epoch_staleness_max = 0;
    // Reproduce the fence's accounting loop (runtime.cpp): running max in
    // rank order (so ties pick the lowest rank) and the epoch's aggregate
    // message count.
    double max_cost = 0.0;
    std::uint64_t epoch_msgs = 0;
    int straggler = -1;
    for (int r = 0; r < p; ++r) {
      const auto& s = scan.slots[static_cast<std::size_t>(r)];
      const double cost = scan.rank_cost(model, s);
      if (cost > max_cost) {
        max_cost = cost;
        straggler = r;
      }
      epoch_msgs += scan.physical_msgs(s);
    }
    step.modeled_seconds = model.epoch_seconds(max_cost, epoch_msgs, p);
    step.straggler = straggler;
    if (straggler >= 0) {
      const auto& s = scan.slots[static_cast<std::size_t>(straggler)];
      step.terms[static_cast<std::size_t>(CostTerm::kCompute)] =
          s.flops * model.flop_time;
      if (scan.tiered) {
        // Tiered attribution: α/β cover the straggler's inter-node hops,
        // the intra terms its intra-node hops.
        step.terms[static_cast<std::size_t>(CostTerm::kLatency)] =
            static_cast<double>(s.msgs_inter) * model.alpha;
        step.terms[static_cast<std::size_t>(CostTerm::kBandwidth)] =
            static_cast<double>(s.bytes_inter) * model.beta;
        step.terms[static_cast<std::size_t>(CostTerm::kLatencyIntra)] =
            static_cast<double>(s.msgs_intra) * model.alpha_intra;
        step.terms[static_cast<std::size_t>(CostTerm::kBandwidthIntra)] =
            static_cast<double>(s.bytes_intra) * model.beta_intra;
      } else {
        step.terms[static_cast<std::size_t>(CostTerm::kLatency)] =
            static_cast<double>(s.msgs) * model.alpha;
        step.terms[static_cast<std::size_t>(CostTerm::kBandwidth)] =
            static_cast<double>(s.bytes) * model.beta;
      }
      rep.straggler_epochs[static_cast<std::size_t>(straggler)] += 1;
    }
    step.terms[static_cast<std::size_t>(CostTerm::kNetwork)] =
        model.gamma * static_cast<double>(epoch_msgs) /
        static_cast<double>(p);
    step.terms[static_cast<std::size_t>(CostTerm::kSync)] = model.sigma;
    // Dominant term: largest share; ties go to the earlier term in enum
    // order (compute before latency before …), deterministically.
    int dom = 0;
    for (int t = 1; t < kNumCostTerms; ++t) {
      if (step.terms[static_cast<std::size_t>(t)] >
          step.terms[static_cast<std::size_t>(dom)]) {
        dom = t;
      }
    }
    step.dominant = static_cast<CostTerm>(dom);

    rep.epochs_dominated[static_cast<std::size_t>(dom)] += 1;
    for (int t = 0; t < kNumCostTerms; ++t) {
      rep.total_seconds_by_term[static_cast<std::size_t>(t)] +=
          step.terms[static_cast<std::size_t>(t)];
    }
    rep.total_recorded_seconds += step.recorded_seconds;
    rep.total_modeled_seconds += step.modeled_seconds;
    if (step.modeled_seconds != step.recorded_seconds) {
      rep.model_matches = false;
    }
    rep.steps.push_back(step);
    scan.reset();
  }
  return rep;
}

// ---------------------------------------------------------------------------
// (d) Convergence
// ---------------------------------------------------------------------------

ConvergenceReport analyze_convergence(const RunTrace& run) {
  DSOUTH_CHECK(run.num_ranks > 0);
  const int p = run.num_ranks;
  ConvergenceReport rep;
  rep.num_ranks = p;

  std::vector<double> last_norm2(static_cast<std::size_t>(p), 0.0);
  std::vector<bool> seen(static_cast<std::size_t>(p), false);
  int reporting = 0;
  std::uint64_t epoch_relax = 0;

  for (const trace::Event& e : run.events) {
    if (e.kind == trace::EventKind::kRelax) {
      const auto r = static_cast<std::size_t>(e.rank);
      last_norm2[r] = e.a1;
      if (!seen[r]) {
        seen[r] = true;
        ++reporting;
      }
      ++epoch_relax;
      continue;
    }
    if (e.kind != trace::EventKind::kFence) continue;
    ConvergenceReport::Point pt;
    pt.epoch = e.epoch;
    pt.t_model = e.t_model;
    pt.relax_events = epoch_relax;
    pt.msgs = static_cast<std::uint64_t>(e.a1);
    pt.ranks_reporting = reporting;
    double sum = 0.0;
    for (double v : last_norm2) sum += v;
    pt.residual_estimate = std::sqrt(sum);
    rep.points.push_back(pt);
    epoch_relax = 0;
  }

  // Stall runs: maximal spans of fenced epochs with no relax anywhere.
  std::optional<ConvergenceReport::Stall> open;
  for (const auto& pt : rep.points) {
    if (pt.relax_events == 0) {
      ++rep.stalled_epochs;
      if (open) {
        open->last_epoch = pt.epoch;
      } else {
        open = ConvergenceReport::Stall{pt.epoch, pt.epoch};
      }
    } else if (open) {
      rep.stalls.push_back(*open);
      open.reset();
    }
  }
  if (open) rep.stalls.push_back(*open);

  if (const MetricSeries* m = run.find_metric("ds.corrections_sent")) {
    rep.ds_corrections_sent = m->total();
  }
  if (const MetricSeries* m = run.find_metric("ds.deferred_sends")) {
    rep.ds_deferred_sends = m->total();
    if (m->total() > 0.0) {
      int arg = 0;
      for (int r = 1; r < p; ++r) {
        if (m->per_rank[static_cast<std::size_t>(r)] >
            m->per_rank[static_cast<std::size_t>(arg)]) {
          arg = r;
        }
      }
      rep.max_deferral_rank = arg;
    }
  }
  return rep;
}

// ---------------------------------------------------------------------------
// (e) Fault injection
// ---------------------------------------------------------------------------

const char* FaultReport::action_name(int action) {
  switch (action) {
    case kDrop:
      return "drop";
    case kDuplicate:
      return "duplicate";
    case kReorder:
      return "reorder";
    case kCorrupt:
      return "corrupt";
    case kTruncate:
      return "truncate";
    case kStall:
      return "stall";
    default:
      return "?";
  }
}

FaultReport analyze_faults(const RunTrace& run) {
  DSOUTH_CHECK(run.num_ranks > 0);
  FaultReport rep;
  rep.by_source.assign(static_cast<std::size_t>(run.num_ranks), 0);
  for (const trace::Event& e : run.events) {
    if (e.kind != trace::EventKind::kFault) continue;
    DSOUTH_CHECK(e.rank >= 0 &&
                 e.rank < static_cast<std::int32_t>(run.num_ranks));
    DSOUTH_CHECK_MSG(e.tag >= 0 && e.tag < FaultReport::kNumActions,
                     "fault event with unknown action " << e.tag);
    rep.by_action[static_cast<std::size_t>(e.tag)] += 1;
    rep.by_source[static_cast<std::size_t>(e.rank)] += 1;
    rep.total += 1;
  }
  if (const MetricSeries* m = run.find_metric("simmpi.faults_dropped")) {
    rep.metric_dropped = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.faults_duplicated")) {
    rep.metric_duplicated = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.faults_corrupted")) {
    rep.metric_corrupted = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.faults_reordered")) {
    rep.metric_reordered = m->total();
  }
  return rep;
}

// ---------------------------------------------------------------------------
// (f) Asynchronous delivery
// ---------------------------------------------------------------------------

AsyncReport analyze_async(const RunTrace& run) {
  DSOUTH_CHECK(run.num_ranks > 0);
  AsyncReport rep;
  rep.by_dest.assign(static_cast<std::size_t>(run.num_ranks), 0);
  for (const trace::Event& e : run.events) {
    if (e.kind != trace::EventKind::kDeliver) continue;
    DSOUTH_CHECK(e.rank >= 0 &&
                 e.rank < static_cast<std::int32_t>(run.num_ranks));
    DSOUTH_CHECK(e.peer >= 0 &&
                 e.peer < static_cast<std::int32_t>(run.num_ranks));
    const auto staleness = static_cast<std::uint64_t>(e.a0);
    if (staleness >= rep.staleness_histogram.size()) {
      rep.staleness_histogram.resize(
          static_cast<std::size_t>(staleness) + 1, 0);
    }
    rep.staleness_histogram[static_cast<std::size_t>(staleness)] += 1;
    rep.by_dest[static_cast<std::size_t>(e.rank)] += 1;
    rep.delivered += 1;
    rep.staleness_sum += staleness;
    rep.staleness_max = std::max(rep.staleness_max, staleness);
  }
  if (const MetricSeries* m = run.find_metric("simmpi.async_delivered")) {
    rep.metric_delivered = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.async_staleness_sum")) {
    rep.metric_staleness_sum = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.async_staleness_max")) {
    // Per-rank gauge: the run-wide figure is the max slot, not the sum.
    double mx = 0.0;
    for (double v : m->per_rank) mx = std::max(mx, v);
    rep.metric_staleness_max = mx;
  }
  return rep;
}

// ---------------------------------------------------------------------------
// (g) Node-aware routing
// ---------------------------------------------------------------------------

const char* NodeReport::hop_name(int kind) {
  switch (kind) {
    case trace::kHopIntraDirect:
      return "intra_direct";
    case trace::kHopRelayUp:
      return "relay_up";
    case trace::kHopInterLeader:
      return "inter_leader";
    case trace::kHopRelayDown:
      return "relay_down";
    case trace::kHopInterDirect:
      return "inter_direct";
    default:
      return "?";
  }
}

NodeReport analyze_node_routing(const RunTrace& run) {
  DSOUTH_CHECK(run.num_ranks > 0);
  NodeReport rep;
  for (const trace::Event& e : run.events) {
    if (e.kind != trace::EventKind::kHop) continue;
    DSOUTH_CHECK(e.rank >= 0 &&
                 e.rank < static_cast<std::int32_t>(run.num_ranks));
    DSOUTH_CHECK_MSG(e.tag >= 0 && e.tag < NodeReport::kNumHopKinds,
                     "hop event with unknown kind " << e.tag);
    const auto bytes = static_cast<std::uint64_t>(e.a0);
    rep.hops_by_kind[static_cast<std::size_t>(e.tag)] += 1;
    rep.bytes_by_kind[static_cast<std::size_t>(e.tag)] += bytes;
    if (trace::hop_is_inter(e.tag)) {
      rep.msgs_inter += 1;
      rep.bytes_inter += bytes;
    } else {
      rep.msgs_intra += 1;
      rep.bytes_intra += bytes;
    }
    if (e.tag == trace::kHopInterLeader) {
      const auto records = static_cast<std::uint64_t>(e.a1);
      rep.forwarded_records += records;
      // Leader pairs are few (≤ nodes²): linear scan, then rank below.
      NodeReport::LeaderPair* pair = nullptr;
      for (auto& lp : rep.leader_pairs) {
        if (lp.src == e.rank && lp.dst == e.peer) {
          pair = &lp;
          break;
        }
      }
      if (!pair) {
        rep.leader_pairs.push_back(NodeReport::LeaderPair{
            static_cast<int>(e.rank), static_cast<int>(e.peer), 0, 0, 0});
        pair = &rep.leader_pairs.back();
      }
      pair->frames += 1;
      pair->records += records;
      pair->bytes += bytes;
    }
  }
  std::sort(rep.leader_pairs.begin(), rep.leader_pairs.end(),
            [](const NodeReport::LeaderPair& a,
               const NodeReport::LeaderPair& b) {
              if (a.frames != b.frames) return a.frames > b.frames;
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  if (const MetricSeries* m = run.find_metric("simmpi.node_msgs_intra")) {
    rep.metric_msgs_intra = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.node_bytes_intra")) {
    rep.metric_bytes_intra = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.node_msgs_inter")) {
    rep.metric_msgs_inter = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.node_bytes_inter")) {
    rep.metric_bytes_inter = m->total();
  }
  if (const MetricSeries* m = run.find_metric("simmpi.node_forward_frames")) {
    rep.metric_forward_frames = m->total();
  }
  if (const MetricSeries* m =
          run.find_metric("simmpi.node_forwarded_records")) {
    rep.metric_forwarded_records = m->total();
  }
  return rep;
}

// ---------------------------------------------------------------------------
// (h) Elastic recovery
// ---------------------------------------------------------------------------

const char* ElasticReport::action_name(int action) {
  switch (action) {
    case kCheckpoint:
      return "checkpoint";
    case kKill:
      return "kill";
    case kRestore:
      return "restore";
    case kRepartition:
      return "repartition";
    default:
      return "?";
  }
}

ElasticReport analyze_elastic(const RunTrace& run) {
  DSOUTH_CHECK(run.num_ranks > 0);
  ElasticReport rep;
  for (const trace::Event& e : run.events) {
    if (e.kind != trace::EventKind::kElastic) continue;
    DSOUTH_CHECK_MSG(e.tag >= 0 && e.tag < ElasticReport::kNumActions,
                     "elastic event with unknown action " << e.tag);
    rep.by_action[static_cast<std::size_t>(e.tag)] += 1;
    rep.total += 1;
    switch (e.tag) {
      case ElasticReport::kCheckpoint: {
        const auto bytes = static_cast<std::uint64_t>(e.a0);
        rep.checkpoint_bytes_last = bytes;
        rep.checkpoint_bytes_max = std::max(rep.checkpoint_bytes_max, bytes);
        rep.checkpoint_bytes_min =
            rep.by_action[ElasticReport::kCheckpoint] == 1
                ? bytes
                : std::min(rep.checkpoint_bytes_min, bytes);
        break;
      }
      case ElasticReport::kKill:
        rep.dead_ranks.push_back(static_cast<int>(e.a0));
        break;
      case ElasticReport::kRestore:
        if (rep.by_action[ElasticReport::kCheckpoint] == 0 ||
            rep.by_action[ElasticReport::kKill] <
                rep.by_action[ElasticReport::kRestore]) {
          rep.restores_ordered = false;
        }
        break;
      case ElasticReport::kRepartition:
        rep.rows_moved += static_cast<std::uint64_t>(e.a1);
        break;
      default:
        break;
    }
  }
  return rep;
}

}  // namespace dsouth::analysis
