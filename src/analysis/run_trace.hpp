#pragma once

/// \file run_trace.hpp
/// The analysis layer's view of one traced run: the deterministic event
/// stream plus the end-of-run metric totals, either taken straight from an
/// in-memory trace::TraceLog or read back from a JSON Lines capture file
/// (the `-trace foo.jsonl` output of the benches). Both construction paths
/// yield identical RunTrace contents for the same run, so every analyzer
/// report is a pure function of the deterministic trace fields — and
/// therefore byte-identical across execution backends.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace dsouth::analysis {

/// One named metric with its per-rank end-of-run values.
struct MetricSeries {
  std::string name;
  trace::MetricKind kind = trace::MetricKind::kCounter;
  std::vector<double> per_rank;

  double total() const;
};

/// One traced run, ready for analysis.
struct RunTrace {
  std::string label;  ///< the bench's run label ("bone010p P=13 DS", …)
  int num_ranks = 0;
  int version = 0;  ///< JSONL schema version (0 when built from a TraceLog)
  std::uint64_t dropped_events = 0;  ///< ring overflows; 0 = complete trace
  std::vector<trace::Event> events;  ///< in seq order
  std::vector<MetricSeries> metrics;

  /// Metric lookup by exact name; nullptr when absent.
  const MetricSeries* find_metric(std::string_view name) const;
};

/// Adopt an in-memory trace log (no serialization round trip).
RunTrace from_trace_log(const trace::TraceLog& log, std::string label);

/// Parse a JSON Lines capture (possibly holding several runs — one header
/// line each, see docs/observability.md). Unknown event kinds or a header
/// version this build does not know are rejected with CheckError; events
/// lacking optional fields (`peer`, `tag`, `t_wall`) get the in-memory
/// defaults, so parse(write_jsonl(log)) == from_trace_log(log) field for
/// field (minus the non-deterministic wall clock).
std::vector<RunTrace> parse_jsonl(std::string_view text);

/// parse_jsonl over a file's contents.
std::vector<RunTrace> read_jsonl_file(const std::string& path);

}  // namespace dsouth::analysis
