#pragma once

/// \file render.hpp
/// Output for the analyzer reports, in the three forms the repo's other
/// artifacts use: ASCII (human, util::Table + util/ascii_plot), CSV (one
/// schema per report, same columns as the ASCII tables), and JSON (one
/// document for the whole analysis). All three are pure functions of the
/// reports, so — reports being pure functions of the deterministic trace —
/// renderer output is byte-identical across execution backends.

#include <iosfwd>
#include <string>

#include "analysis/analyzer.hpp"

namespace dsouth::analysis {

/// Everything the analyzer knows about one run.
struct RunAnalysis {
  std::string label;
  int num_ranks = 0;
  int trace_version = 0;
  std::uint64_t dropped_events = 0;
  TimelineReport timeline;
  CommMatrixReport comm;
  CriticalPathReport critical_path;
  ConvergenceReport convergence;
  /// Fault-injection tallies; all-zero (and omitted from every renderer)
  /// for fault-free traces, so fault-free output is unchanged.
  FaultReport faults;
  /// Async-delivery tallies (staleness histogram); all-zero and omitted
  /// for bulk-synchronous traces, keeping their output unchanged.
  AsyncReport async;
  /// Node-aware hop tallies (tier totals, leader pairs); all-zero and
  /// omitted for single-level traces, keeping their output unchanged.
  NodeReport node;
  /// Elastic checkpoint/recovery tallies; all-zero and omitted for
  /// kill-free traces, keeping their output unchanged.
  ElasticReport elastic;
};

struct AnalyzeOptions {
  simmpi::MachineModel model{};  ///< must match the traced run's model
  int top_pairs = 10;            ///< hot pairs listed in ASCII/JSON output
};

/// Run all four analyses.
RunAnalysis analyze_run(const RunTrace& run, const AnalyzeOptions& opt = {});

/// Human-readable report: per-rank timeline table, imbalance summary, hot
/// pairs + Table 3-style per-tag comm costs, per-term critical-path rollup,
/// and the residual-vs-modeled-time curve (log-y ascii plot).
void render_ascii(std::ostream& os, const RunAnalysis& a,
                  const AnalyzeOptions& opt = {});

/// CSV bodies (header line + rows, '\n'-terminated).
std::string timeline_csv(const RunAnalysis& a);       ///< one row per rank
std::string steps_csv(const RunAnalysis& a);          ///< one row per epoch
std::string comm_matrix_csv(const RunAnalysis& a);    ///< nonzero (src,dst)
std::string critical_path_csv(const RunAnalysis& a);  ///< one row per epoch
std::string convergence_csv(const RunAnalysis& a);    ///< one row per epoch

/// The whole analysis as one JSON document (schema
/// "dsouth.analysis", version 1; see docs/observability.md).
std::string to_json(const RunAnalysis& a, const AnalyzeOptions& opt = {});

}  // namespace dsouth::analysis
