#pragma once

/// \file analyzer.hpp
/// Trace analysis: turns a RunTrace (the deterministic event stream of one
/// run) into the reports the paper's communication-cost argument is made
/// of — who computed, who talked to whom, which α–β–γ term paid for each
/// superstep, and how the residual fell against modeled time. Every report
/// is a pure function of (RunTrace, MachineModel), so reports — like the
/// traces they come from — are bit-identical across execution backends.
///
/// Epoch accounting mirrors the runtime exactly (simmpi/runtime.cpp):
/// events carry the epoch index in flight when they were recorded, so
/// summing compute/put events per (rank, epoch) in stream order reproduces
/// the runtime's per-epoch accumulators addend for addend — which is what
/// lets the critical-path report recompute every fence's modeled seconds
/// bit-exactly (`CriticalPathReport::model_matches`).

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/run_trace.hpp"
#include "simmpi/machine_model.hpp"
#include "simmpi/stats.hpp"

namespace dsouth::analysis {

// ---------------------------------------------------------------------------
// (a) Per-rank timeline and load imbalance
// ---------------------------------------------------------------------------

struct TimelineReport {
  /// Per-rank totals over all fenced epochs. Modeled seconds split the way
  /// the machine model charges them: compute = flops·c_flop, send = msgs·α
  /// + bytes·β (together the rank's "busy" cost), wait = the rest of each
  /// epoch's duration (straggler gap plus the epoch's γ/σ share).
  struct Rank {
    double compute_seconds = 0.0;
    double send_seconds = 0.0;
    double wait_seconds = 0.0;
    std::uint64_t relax_phases = 0;
    std::uint64_t rows_relaxed = 0;
    std::uint64_t absorb_phases = 0;
    std::uint64_t absorbed_msgs = 0;
    std::uint64_t msgs_sent = 0;

    double busy_seconds() const { return compute_seconds + send_seconds; }
  };

  /// Per-epoch load balance: max and mean of the per-rank busy cost, and
  /// who the straggler (max) rank was.
  struct Step {
    std::uint64_t epoch = 0;
    double epoch_seconds = 0.0;  ///< as recorded by the fence event
    double max_cost = 0.0;
    double mean_cost = 0.0;
    int straggler = -1;

    /// max/mean busy cost; 1 = perfectly balanced. An all-idle epoch has
    /// no meaningful ratio and reports 1.
    double imbalance() const {
      return mean_cost > 0.0 ? max_cost / mean_cost : 1.0;
    }
  };

  int num_ranks = 0;
  std::vector<Rank> ranks;
  std::vector<Step> steps;
  double total_model_seconds = 0.0;  ///< Σ epoch_seconds
  double max_imbalance = 1.0;        ///< max over steps
  double mean_imbalance = 1.0;       ///< mean over steps
};

TimelineReport analyze_timeline(const RunTrace& run,
                                const simmpi::MachineModel& model);

// ---------------------------------------------------------------------------
// (b) P×P communication matrix
// ---------------------------------------------------------------------------

struct CommMatrixReport {
  int num_ranks = 0;

  /// One cell of the conceptual P×P matrix. The report stores only the
  /// *touched* cells: DS exchanges with graph neighbors, so the matrix has
  /// O(P) nonzeros while the dense form costs P² to allocate and scan —
  /// superlinear in P for the host (bench/scaling measured ~×33 analysis
  /// time and ~P² bytes going P 16→256 with the dense build).
  struct Pair {
    int src = -1;
    int dst = -1;
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    /// Per-tag message counts (solve / residual / other — Table 3's
    /// split); they partition `msgs`.
    std::array<std::uint64_t, simmpi::kNumTags> msgs_by_tag{};
  };
  /// Every communicating pair, sorted (src, dst) ascending — the same
  /// order a row-major dense scan that skips zeros would visit.
  std::vector<Pair> pairs;

  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  std::array<std::uint64_t, simmpi::kNumTags> total_by_tag{};

  /// The same pairs ranked by message count (ties: bytes, then
  /// (src, dst)), descending.
  std::vector<Pair> hot_pairs;

  /// Cell (src, dst), or null when the pair never communicated.
  const Pair* find(int src, int dst) const;

  /// The paper's §4.3 metric, total msgs / P — equals CommStats::comm_cost
  /// exactly when the trace is drop-free.
  double comm_cost() const;
  /// Per-tag comm cost (Table 3 columns).
  double comm_cost(simmpi::MsgTag tag) const;
};

CommMatrixReport analyze_comm_matrix(const RunTrace& run);

// ---------------------------------------------------------------------------
// (c) Critical-path attribution under the α–β–γ model
// ---------------------------------------------------------------------------

/// The places an epoch's modeled seconds can go:
/// T_epoch = max_p(flops_p·c + msgs_p·α + bytes_p·β) + γ·msgs/P + σ.
/// Node-aware (version-5) traces charge per physical hop on a two-tier
/// network instead (MachineModel::rank_cost_tiered): the latency/bandwidth
/// terms then cover the straggler's *inter-node* hops and the two intra
/// terms its intra-node hops (zero for single-level traces, so the first
/// five terms keep their meaning everywhere).
enum class CostTerm : int {
  kCompute = 0,        ///< straggler's flops·c_flop
  kLatency = 1,        ///< straggler's (inter) msgs·α
  kBandwidth = 2,      ///< straggler's (inter) bytes·β
  kNetwork = 3,        ///< γ·(epoch msgs)/P
  kSync = 4,           ///< σ
  kLatencyIntra = 5,   ///< straggler's intra-node msgs·α_intra (tiered only)
  kBandwidthIntra = 6, ///< straggler's intra-node bytes·β_intra (tiered only)
};
inline constexpr int kNumCostTerms = 7;
/// Terms live in a single-level (non-tiered) trace — the first five. The
/// renderers emit only these for such traces, keeping their CSV/JSON
/// byte-identical to pre-node-aware builds.
inline constexpr int kNumFlatCostTerms = 5;

/// "compute"/"latency"/"bandwidth"/"network"/"sync"/"latency_intra"/
/// "bandwidth_intra".
const char* cost_term_name(CostTerm term);

struct CriticalPathReport {
  struct Step {
    std::uint64_t epoch = 0;
    int straggler = -1;  ///< argmax rank (lowest rank on ties, like fence())
    /// Seconds by term; terms[0..2] are the straggler's, [3..4] epoch-wide.
    std::array<double, kNumCostTerms> terms{};
    double recorded_seconds = 0.0;  ///< fence event a0
    double modeled_seconds = 0.0;   ///< recomputed from events
    CostTerm dominant = CostTerm::kSync;
    /// Non-fence delivery (version-4 "deliver" events): messages that
    /// matured at THIS fence after an event-driven latency draw, and the
    /// worst staleness among them. The α/β cost of those messages was
    /// charged in their send epoch (above), so an epoch can be network-
    /// dominated by traffic whose data only takes effect here — these two
    /// fields are what lets the attribution say so. Zero for
    /// bulk-synchronous traces.
    std::uint64_t async_delivered = 0;
    std::uint64_t async_staleness_max = 0;
  };

  int num_ranks = 0;
  std::vector<Step> steps;
  std::array<double, kNumCostTerms> total_seconds_by_term{};
  std::array<std::uint64_t, kNumCostTerms> epochs_dominated{};
  std::vector<std::uint64_t> straggler_epochs;  ///< per rank
  double total_recorded_seconds = 0.0;
  double total_modeled_seconds = 0.0;
  /// True when every epoch's recomputed seconds equal the fence record
  /// bit-for-bit — the analyzer's proof that it reconstructed the machine
  /// model's accounting exactly. Drop-free version-2 traces must match,
  /// and so must node-aware version-5 traces: hop tallies are integers,
  /// so the tiered rebuild is order-independent and lands on the
  /// runtime's doubles addend for addend.
  bool model_matches = false;
  /// True when the trace carries hop events: the rebuild charged
  /// rank_cost_tiered from physical hops rather than rank_cost from puts,
  /// and the two intra CostTerms are live.
  bool tiered = false;
};

CriticalPathReport analyze_critical_path(const RunTrace& run,
                                         const simmpi::MachineModel& model);

// ---------------------------------------------------------------------------
// (d) Convergence diagnostics
// ---------------------------------------------------------------------------

struct ConvergenceReport {
  /// One point per fenced epoch. The residual estimate is the trace's view:
  /// √(Σ_p last ‖r_p‖²) over each rank's most recent relax event — exactly
  /// the quantity Distributed Southwell itself tracks. Ranks that have not
  /// relaxed yet contribute 0 (see `ranks_reporting`).
  struct Point {
    std::uint64_t epoch = 0;
    double t_model = 0.0;  ///< cumulative modeled seconds after the fence
    double residual_estimate = 0.0;
    int ranks_reporting = 0;   ///< ranks with ≥1 relax event so far
    std::uint64_t relax_events = 0;  ///< in this epoch
    std::uint64_t msgs = 0;          ///< in this epoch (fence record)
  };

  /// A maximal run of consecutive epochs in which no rank relaxed — pure
  /// communication/synchronization, the stalls the ds.* counters explain.
  struct Stall {
    std::uint64_t first_epoch = 0;
    std::uint64_t last_epoch = 0;
    std::uint64_t epochs() const { return last_epoch - first_epoch + 1; }
  };

  int num_ranks = 0;
  std::vector<Point> points;
  std::vector<Stall> stalls;
  std::uint64_t stalled_epochs = 0;

  /// Distributed Southwell deferral diagnostics, from the ds.* counters
  /// (absent for other methods).
  std::optional<double> ds_corrections_sent;  ///< total over ranks
  std::optional<double> ds_deferred_sends;    ///< total over ranks
  /// Rank with the most deferred sends (set iff ds_deferred_sends > 0).
  std::optional<int> max_deferral_rank;
};

ConvergenceReport analyze_convergence(const RunTrace& run);

// ---------------------------------------------------------------------------
// (e) Fault injection (src/faults)
// ---------------------------------------------------------------------------

/// Tally of the version-3 "fault" events the runtime records when a
/// FaultSchedule is attached (trace.hpp: peer = destination, tag = action
/// code, a0 = message seq, a1 = action detail). Empty/zero for fault-free
/// traces — the renderers emit a faults section only when any() is true.
struct FaultReport {
  /// Action codes, exactly as the runtime emits them.
  enum Action : int {
    kDrop = 0,
    kDuplicate = 1,
    kReorder = 2,
    kCorrupt = 3,
    kTruncate = 4,
    kStall = 5,
  };
  static constexpr int kNumActions = 6;
  static const char* action_name(int action);

  std::array<std::uint64_t, kNumActions> by_action{};
  /// Faults per source rank (the rank whose outgoing message was hit).
  std::vector<std::uint64_t> by_source;
  std::uint64_t total = 0;

  bool any() const { return total > 0; }

  /// The runtime's simmpi.faults_* metric totals, when the trace carries
  /// them (cross-checked against the event tallies by `dsouth-analyze
  /// -check`; faults_corrupted counts corrupt + truncate actions).
  std::optional<double> metric_dropped;
  std::optional<double> metric_duplicated;
  std::optional<double> metric_corrupted;
  std::optional<double> metric_reordered;
};

FaultReport analyze_faults(const RunTrace& run);

// ---------------------------------------------------------------------------
// (f) Asynchronous delivery (simmpi EventDriven policy)
// ---------------------------------------------------------------------------

/// Tally of the version-4 "deliver" events the runtime records when the
/// EventDriven delivery policy is attached (trace.hpp: rank = destination,
/// peer = source, tag = MsgTag code, a0 = staleness in epochs, a1 = payload
/// doubles). Empty/zero for bulk-synchronous traces — the renderers emit an
/// async section only when any() is true.
struct AsyncReport {
  std::uint64_t delivered = 0;      ///< total matured deliveries
  std::uint64_t staleness_sum = 0;  ///< Σ staleness over deliveries
  std::uint64_t staleness_max = 0;
  /// staleness_histogram[s] = deliveries that arrived s epochs after they
  /// were staged; size = staleness_max + 1 (empty when no deliver events).
  /// Index 0 counts on-time (next-fence) deliveries, so the histogram's
  /// tail is exactly the asynchrony the staleness bound permitted.
  std::vector<std::uint64_t> staleness_histogram;
  /// Deliveries per destination rank (who consumed stale data).
  std::vector<std::uint64_t> by_dest;

  bool any() const { return delivered > 0; }
  double mean_staleness() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(staleness_sum) /
                                static_cast<double>(delivered);
  }

  /// The runtime's simmpi.async_* metric totals, when the trace carries
  /// them (cross-checked against the event tallies by `dsouth-analyze
  /// -check`). metric_staleness_max is the max over the per-rank gauge
  /// slots, not a sum.
  std::optional<double> metric_delivered;
  std::optional<double> metric_staleness_sum;
  std::optional<double> metric_staleness_max;
};

AsyncReport analyze_async(const RunTrace& run);

// ---------------------------------------------------------------------------
// (g) Node-aware routing (simmpi/node_topology.hpp)
// ---------------------------------------------------------------------------

/// Tally of the version-5 "hop" events the runtime records when a
/// non-flat node topology is attached (trace.hpp: rank = paying rank,
/// peer = physical destination, tag = hop kind, a0 = modeled bytes, a1 =
/// logical records). The report needs no node map: hop kinds alone carry
/// the tier split, and the leader-pair matrix falls out of the
/// inter_leader events' (rank, peer) endpoints. Empty/zero for
/// single-level traces — the renderers emit a node section only when
/// any() is true.
struct NodeReport {
  /// Hop kinds, exactly as the runtime emits them (trace.hpp constants).
  static constexpr int kNumHopKinds = 5;
  static const char* hop_name(int kind);

  std::array<std::uint64_t, kNumHopKinds> hops_by_kind{};
  std::array<std::uint64_t, kNumHopKinds> bytes_by_kind{};
  /// Tier totals (hops_by_kind folded through trace::hop_is_inter).
  std::uint64_t msgs_intra = 0;
  std::uint64_t bytes_intra = 0;
  std::uint64_t msgs_inter = 0;
  std::uint64_t bytes_inter = 0;
  /// Leader->leader aggregates (routing on only): Σ records over
  /// inter_leader hops; frames == hops_by_kind[kHopInterLeader].
  std::uint64_t forwarded_records = 0;

  /// Leader pairs ranked by frame count (ties: bytes, then (src, dst)),
  /// descending — the node-level hot-pair view of the comm matrix.
  struct LeaderPair {
    int src = -1;  ///< source-node leader rank
    int dst = -1;  ///< destination-node leader rank
    std::uint64_t frames = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<LeaderPair> leader_pairs;

  bool any() const { return msgs_intra + msgs_inter > 0; }

  /// The runtime's simmpi.node_* metric totals, when the trace carries
  /// them (cross-checked against the event tallies by `dsouth-analyze
  /// -check`).
  std::optional<double> metric_msgs_intra;
  std::optional<double> metric_bytes_intra;
  std::optional<double> metric_msgs_inter;
  std::optional<double> metric_bytes_inter;
  std::optional<double> metric_forward_frames;
  std::optional<double> metric_forwarded_records;
};

NodeReport analyze_node_routing(const RunTrace& run);

// ---------------------------------------------------------------------------
// (h) Elastic recovery (src/elastic)
// ---------------------------------------------------------------------------

/// Tally of the version-6 "elastic" events the elastic driver records when
/// the fault plan configures permanent kills (trace.hpp: tag = action code,
/// a0/a1 = per-action detail). Empty/zero for kill-free traces — the
/// renderers emit an elastic section only when any() is true, so fault-free
/// elastic output is byte-identical to a plain run's.
struct ElasticReport {
  /// Action codes, exactly as elastic::run_elastic emits them.
  enum Action : int {
    kCheckpoint = 0,   ///< a0 = buffer bytes, a1 = checkpointed step
    kKill = 1,         ///< a0 = dead rank, a1 = kill epoch
    kRestore = 2,      ///< a0 = restored step, a1 = restored epoch
    kRepartition = 3,  ///< a0 = dead rank, a1 = rows moved off it
  };
  static constexpr int kNumActions = 4;
  static const char* action_name(int action);

  std::array<std::uint64_t, kNumActions> by_action{};
  std::uint64_t total = 0;

  std::uint64_t checkpoint_bytes_last = 0;
  std::uint64_t checkpoint_bytes_max = 0;
  /// Smallest checkpoint seen (0 only when there were none) — `-check`
  /// asserts every checkpoint event carried a positive byte count.
  std::uint64_t checkpoint_bytes_min = 0;
  /// Σ rows moved over repartition events.
  std::uint64_t rows_moved = 0;
  /// Dead ranks from kill events, in detection (stream) order.
  std::vector<int> dead_ranks;

  /// Stream-order sanity, checked while scanning: every restore event was
  /// preceded by at least one checkpoint and by at least as many kill
  /// events as restores so far (a restore only happens after a detected
  /// death rolls back to a stored checkpoint).
  bool restores_ordered = true;

  bool any() const { return total > 0; }
};

ElasticReport analyze_elastic(const RunTrace& run);

}  // namespace dsouth::analysis
