#include "simmpi/runtime.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsouth::simmpi {

Runtime::Runtime(int num_ranks, MachineModel model, DeliveryModel delivery)
    : num_ranks_(num_ranks),
      model_(model),
      delivery_(delivery),
      delivery_state_(delivery.seed),
      stats_(num_ranks),
      windows_(static_cast<std::size_t>(num_ranks)),
      staging_(static_cast<std::size_t>(num_ranks)),
      epoch_flops_(static_cast<std::size_t>(num_ranks), 0.0),
      epoch_msgs_(static_cast<std::size_t>(num_ranks), 0),
      epoch_bytes_(static_cast<std::size_t>(num_ranks), 0) {
  DSOUTH_CHECK(num_ranks > 0);
}

std::span<const Message> Runtime::window(int rank) const {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  return windows_[static_cast<std::size_t>(rank)];
}

void Runtime::put(int source, int dest, MsgTag tag,
                  std::span<const double> payload) {
  DSOUTH_CHECK(source >= 0 && source < num_ranks_);
  DSOUTH_CHECK(dest >= 0 && dest < num_ranks_);
  DSOUTH_CHECK_MSG(source != dest, "rank " << source << " put to itself");
  // Delivery delay draw (SplitMix64 inline so the runtime stays
  // self-contained and deterministic).
  std::uint64_t deliver_epoch = epochs_;  // next fence
  bool delayed = false;
  if (delivery_.delay_probability > 0.0) {
    auto next_u64 = [this] {
      std::uint64_t z = (delivery_state_ += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    const double u =
        static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    if (u < delivery_.delay_probability) {
      const auto extra = 1 + static_cast<std::uint64_t>(
                                 next_u64() %
                                 static_cast<std::uint64_t>(
                                     delivery_.max_delay_epochs));
      deliver_epoch = epochs_ + extra;
      delayed = true;
      ++delayed_in_flight_;
    }
  }
  staging_[static_cast<std::size_t>(dest)].push_back(
      Staged{source, tag, seq_++, deliver_epoch, delayed,
             std::vector<double>(payload.begin(), payload.end())});
  const std::uint64_t bytes = message_bytes(payload.size());
  stats_.record_send(source, tag, bytes);
  ++epoch_msgs_[static_cast<std::size_t>(source)];
  epoch_bytes_[static_cast<std::size_t>(source)] += bytes;
  ++epoch_total_msgs_;
}

void Runtime::add_flops(int rank, double flops) {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  DSOUTH_CHECK(flops >= 0.0);
  epoch_flops_[static_cast<std::size_t>(rank)] += flops;
}

void Runtime::fence() {
  // Charge the machine model for this epoch.
  double max_rank_cost = 0.0;
  for (int r = 0; r < num_ranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    max_rank_cost =
        std::max(max_rank_cost, model_.rank_cost(epoch_flops_[i],
                                                 epoch_msgs_[i],
                                                 epoch_bytes_[i]));
    epoch_flops_[i] = 0.0;
    epoch_msgs_[i] = 0;
    epoch_bytes_[i] = 0;
  }
  last_epoch_seconds_ =
      model_.epoch_seconds(max_rank_cost, epoch_total_msgs_, num_ranks_);
  model_time_ += last_epoch_seconds_;
  epoch_total_msgs_ = 0;
  ++epochs_;

  // Deliver matured staged messages, sorted by (source, send order) so
  // every run is bit-identical regardless of the order ranks were stepped
  // in. Messages whose deliver_epoch lies in the future stay staged
  // (the delivery-delay model).
  for (int r = 0; r < num_ranks_; ++r) {
    auto& staged = staging_[static_cast<std::size_t>(r)];
    auto& win = windows_[static_cast<std::size_t>(r)];
    std::sort(staged.begin(), staged.end(),
              [](const Staged& a, const Staged& b) {
                if (a.source != b.source) return a.source < b.source;
                return a.seq < b.seq;
              });
    std::vector<Staged> keep;
    for (auto& s : staged) {
      if (s.deliver_epoch < epochs_) {
        if (s.delayed) {
          DSOUTH_ASSERT(delayed_in_flight_ > 0);
          --delayed_in_flight_;
        }
        win.push_back(Message{s.source, s.tag, std::move(s.payload)});
      } else {
        keep.push_back(std::move(s));
      }
    }
    staged.swap(keep);
  }
}

void Runtime::consume(int rank) {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  windows_[static_cast<std::size_t>(rank)].clear();
}

void Runtime::drain_delayed() {
  for (int i = 0; i <= delivery_.max_delay_epochs; ++i) {
    bool any = false;
    for (const auto& staged : staging_) {
      if (!staged.empty()) any = true;
    }
    if (!any) break;
    fence();
  }
}

}  // namespace dsouth::simmpi
