#include "simmpi/runtime.hpp"

#include <algorithm>
#include <bit>

#include "faults/fault_plan.hpp"
#include "util/error.hpp"

namespace dsouth::simmpi {

Runtime::Runtime(int num_ranks, MachineModel model, DeliveryModel delivery)
    : num_ranks_(num_ranks),
      model_(model),
      delivery_(delivery),
      delivery_state_(delivery.seed),
      stats_(num_ranks),
      windows_(static_cast<std::size_t>(num_ranks)),
      lanes_(static_cast<std::size_t>(num_ranks)),
      lane_seq_(static_cast<std::size_t>(num_ranks), 0),
      deferred_(static_cast<std::size_t>(num_ranks)),
      stage_pools_(static_cast<std::size_t>(num_ranks)),
      window_pools_(static_cast<std::size_t>(num_ranks)),
      fence_matured_(static_cast<std::size_t>(num_ranks)),
      epoch_flops_(static_cast<std::size_t>(num_ranks), 0.0),
      epoch_msgs_(static_cast<std::size_t>(num_ranks), 0),
      epoch_bytes_(static_cast<std::size_t>(num_ranks), 0),
      epoch_msgs_intra_(static_cast<std::size_t>(num_ranks), 0),
      epoch_bytes_intra_(static_cast<std::size_t>(num_ranks), 0),
      epoch_msgs_inter_(static_cast<std::size_t>(num_ranks), 0),
      epoch_bytes_inter_(static_cast<std::size_t>(num_ranks), 0) {
  DSOUTH_CHECK(num_ranks > 0);
}

void Runtime::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (!tracer_) {
    m_msgs_sent_ = trace::kInvalidMetric;
    m_bytes_sent_ = trace::kInvalidMetric;
    m_flops_ = trace::kInvalidMetric;
    m_msgs_physical_ = trace::kInvalidMetric;
    m_msgs_logical_ = trace::kInvalidMetric;
    m_msgs_by_tag_.fill(trace::kInvalidMetric);
    refresh_fault_metrics();
    refresh_async_metrics();
    refresh_node_metrics();
    return;
  }
  DSOUTH_CHECK(tracer->num_ranks() == num_ranks_);
  auto& m = tracer_->metrics();
  m_msgs_sent_ = m.register_metric("simmpi.msgs_sent",
                                   trace::MetricKind::kCounter);
  m_bytes_sent_ = m.register_metric("simmpi.bytes_sent",
                                    trace::MetricKind::kCounter);
  m_flops_ = m.register_metric("simmpi.flops", trace::MetricKind::kCounter);
  m_msgs_physical_ = m.register_metric("simmpi.msgs_physical",
                                       trace::MetricKind::kCounter);
  m_msgs_logical_ = m.register_metric("simmpi.msgs_logical",
                                      trace::MetricKind::kCounter);
  m_msgs_by_tag_[static_cast<std::size_t>(MsgTag::kSolve)] =
      m.register_metric("simmpi.msgs_solve", trace::MetricKind::kCounter);
  m_msgs_by_tag_[static_cast<std::size_t>(MsgTag::kResidual)] =
      m.register_metric("simmpi.msgs_residual", trace::MetricKind::kCounter);
  m_msgs_by_tag_[static_cast<std::size_t>(MsgTag::kOther)] =
      m.register_metric("simmpi.msgs_other", trace::MetricKind::kCounter);
  refresh_fault_metrics();
  refresh_async_metrics();
  refresh_node_metrics();
}

void Runtime::set_profiler(prof::Profiler* profiler) {
  if (profiler) {
    DSOUTH_CHECK_MSG(profiler->num_ranks() == num_ranks_,
                     "profiler needs one lane per rank plus the runtime "
                     "lane: construct it with Profiler(num_ranks())");
  }
  prof_ = profiler;
}

void Runtime::set_fault_schedule(const faults::FaultSchedule* schedule) {
  if (schedule) {
    DSOUTH_CHECK(schedule->num_ranks() == num_ranks_);
  }
  faults_ = schedule;
  kills_ = faults_ && faults_->any_kills();
  refresh_fault_metrics();
}

bool Runtime::rank_dead(int rank) const {
  DSOUTH_ASSERT(rank >= 0 && rank < num_ranks_);
  return kills_ && faults_->dead(rank, epochs_);
}

RuntimeState Runtime::capture_state() const {
  for (const auto& lane : lanes_) {
    DSOUTH_CHECK_MSG(lane.empty(),
                     "capture_state requires empty staging lanes — "
                     "checkpoint between epochs, after the fence");
  }
  RuntimeState st(num_ranks_);
  st.epochs = epochs_;
  st.model_time = model_time_;
  st.last_epoch_seconds = last_epoch_seconds_;
  st.delivery_state = delivery_state_;
  st.arrival_counter = arrival_counter_;
  st.lane_seq = lane_seq_;
  st.stats = stats_;
  for (int d = 0; d < num_ranks_; ++d) {
    for (const Message& msg : windows_[static_cast<std::size_t>(d)]) {
      st.window_msgs.push_back(
          RuntimeState::WindowMsg{d, msg.source, msg.tag, msg.payload});
    }
    for (const Deferred& held : deferred_[static_cast<std::size_t>(d)]) {
      st.deferred.push_back(RuntimeState::InFlight{
          d, held.source, held.tag, held.seq, held.staged_epoch,
          held.deliver_epoch, held.arrival, held.payload});
    }
  }
  return st;
}

void Runtime::restore_state(const RuntimeState& st) {
  DSOUTH_CHECK(st.stats.num_ranks() == num_ranks_);
  DSOUTH_CHECK(st.lane_seq.size() == static_cast<std::size_t>(num_ranks_));
  for (const auto& lane : lanes_) {
    DSOUTH_CHECK_MSG(lane.empty(),
                     "restore_state requires empty staging lanes");
  }
  epochs_ = st.epochs;
  model_time_ = st.model_time;
  last_epoch_seconds_ = st.last_epoch_seconds;
  delivery_state_ = st.delivery_state;
  arrival_counter_ = st.arrival_counter;
  lane_seq_ = st.lane_seq;
  stats_ = st.stats;
  for (auto& win : windows_) win.clear();
  for (auto& held : deferred_) held.clear();
  for (const auto& wm : st.window_msgs) {
    DSOUTH_CHECK(wm.dest >= 0 && wm.dest < num_ranks_);
    windows_[static_cast<std::size_t>(wm.dest)].push_back(
        Message{wm.source, wm.tag, wm.payload});
  }
  for (const auto& inf : st.deferred) {
    DSOUTH_CHECK(inf.dest >= 0 && inf.dest < num_ranks_);
    deferred_[static_cast<std::size_t>(inf.dest)].push_back(
        Deferred{inf.source, inf.tag, inf.seq, inf.staged_epoch,
                 inf.deliver_epoch, inf.arrival, inf.payload});
  }
}

void Runtime::set_delivery_policy(const DeliveryPolicy* policy) {
  policy_ = policy ? policy : &bulk_synchronous_policy();
  // max_staleness == 0 means no message may outlive its staging epoch —
  // which is exactly the bulk-synchronous contract. The policy degenerates
  // and the runtime treats it as BSP outright (no deliver events, no async
  // metrics), so a staleness-0 EventDriven run is byte-identical to one
  // under BulkSynchronousPolicy.
  async_ = policy_->kind() == DeliveryPolicyKind::kEventDriven &&
           policy_->max_staleness() > 0;
  refresh_async_metrics();
}

void Runtime::set_node_topology(const NodeTopology* topo,
                                NodeRoutingOptions opts) {
  // A flat topology (one rank per node) has no intra-node tier to model:
  // treat it exactly like no topology at all, so flat runs stay
  // byte-identical to topology-free runs (the header's degeneracy
  // contract).
  if (topo && topo->is_flat()) topo = nullptr;
  if (topo) {
    DSOUTH_CHECK(topo->num_ranks() == num_ranks_);
    const auto nn = static_cast<std::size_t>(topo->num_nodes());
    node_route_ = opts.route_via_leaders;
    if (node_route_) {
      DSOUTH_CHECK_MSG(
          opts.pair_channel_counts.size() == nn * nn,
          "routing needs the dense num_nodes^2 channel-count matrix "
          "(wire::NodeCommPlan::pair_channel_counts)");
      node_pair_channels_ = std::move(opts.pair_channel_counts);
    } else {
      node_pair_channels_.clear();
    }
    group_puts_.assign(nn * nn * kNumTags, 0);
    group_records_.assign(nn * nn * kNumTags, 0);
    group_doubles_.assign(nn * nn * kNumTags, 0);
    group_touched_.clear();
    group_touched_.reserve(nn * nn * kNumTags);
  } else {
    node_route_ = false;
    node_pair_channels_.clear();
    group_puts_.clear();
    group_records_.clear();
    group_doubles_.clear();
    group_touched_.clear();
  }
  topo_ = topo;
  refresh_node_metrics();
}

void Runtime::refresh_node_metrics() {
  if (!tracer_ || !topo_) {
    m_node_msgs_intra_ = trace::kInvalidMetric;
    m_node_bytes_intra_ = trace::kInvalidMetric;
    m_node_msgs_inter_ = trace::kInvalidMetric;
    m_node_bytes_inter_ = trace::kInvalidMetric;
    m_node_forward_frames_ = trace::kInvalidMetric;
    m_node_forwarded_records_ = trace::kInvalidMetric;
    return;
  }
  auto& m = tracer_->metrics();
  m_node_msgs_intra_ = m.register_metric("simmpi.node_msgs_intra",
                                         trace::MetricKind::kCounter);
  m_node_bytes_intra_ = m.register_metric("simmpi.node_bytes_intra",
                                          trace::MetricKind::kCounter);
  m_node_msgs_inter_ = m.register_metric("simmpi.node_msgs_inter",
                                         trace::MetricKind::kCounter);
  m_node_bytes_inter_ = m.register_metric("simmpi.node_bytes_inter",
                                          trace::MetricKind::kCounter);
  m_node_forward_frames_ = m.register_metric("simmpi.node_forward_frames",
                                             trace::MetricKind::kCounter);
  m_node_forwarded_records_ = m.register_metric(
      "simmpi.node_forwarded_records", trace::MetricKind::kCounter);
}

void Runtime::refresh_async_metrics() {
  if (!tracer_ || !async_) {
    m_async_delivered_ = trace::kInvalidMetric;
    m_async_staleness_sum_ = trace::kInvalidMetric;
    m_async_staleness_max_ = trace::kInvalidMetric;
    return;
  }
  auto& m = tracer_->metrics();
  m_async_delivered_ = m.register_metric("simmpi.async_delivered",
                                         trace::MetricKind::kCounter);
  m_async_staleness_sum_ = m.register_metric("simmpi.async_staleness_sum",
                                             trace::MetricKind::kCounter);
  m_async_staleness_max_ = m.register_metric("simmpi.async_staleness_max",
                                             trace::MetricKind::kGauge);
}

void Runtime::refresh_fault_metrics() {
  if (!tracer_ || !faults_) {
    m_faults_dropped_ = trace::kInvalidMetric;
    m_faults_duplicated_ = trace::kInvalidMetric;
    m_faults_corrupted_ = trace::kInvalidMetric;
    m_faults_reordered_ = trace::kInvalidMetric;
    m_faults_killed_ = trace::kInvalidMetric;
    return;
  }
  auto& m = tracer_->metrics();
  m_faults_dropped_ = m.register_metric("simmpi.faults_dropped",
                                        trace::MetricKind::kCounter);
  m_faults_duplicated_ = m.register_metric("simmpi.faults_duplicated",
                                           trace::MetricKind::kCounter);
  m_faults_corrupted_ = m.register_metric("simmpi.faults_corrupted",
                                          trace::MetricKind::kCounter);
  m_faults_reordered_ = m.register_metric("simmpi.faults_reordered",
                                          trace::MetricKind::kCounter);
  // Registered only for plans that configure permanent failure, so
  // message-fault-only traces keep their pre-elastic metric set.
  m_faults_killed_ = faults_->any_kills()
                         ? m.register_metric("simmpi.faults_killed",
                                             trace::MetricKind::kCounter)
                         : trace::kInvalidMetric;
}

std::span<const Message> Runtime::window(int rank) const {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  return windows_[static_cast<std::size_t>(rank)];
}

void Runtime::put(int source, int dest, MsgTag tag,
                  std::span<const double> payload) {
  auto out = stage(source, dest, tag, payload.size());
  std::copy(payload.begin(), payload.end(), out.begin());
}

std::span<double> Runtime::stage(int source, int dest, MsgTag tag,
                                 std::size_t doubles,
                                 std::uint64_t logical_records) {
  DSOUTH_CHECK(source >= 0 && source < num_ranks_);
  DSOUTH_CHECK(dest >= 0 && dest < num_ranks_);
  DSOUTH_CHECK_MSG(source != dest, "rank " << source << " put to itself");
  DSOUTH_CHECK(logical_records >= 1);
  // Host profiling (prof/prof.hpp): the span goes into the SOURCE's lane,
  // written only by the thread driving that rank — same contract as the
  // staging state below.
  const prof::ScopedPhase prof_stage(prof_, source, prof::PhaseId::kStage);
  // Everything below is indexed by `source`: concurrent stages from
  // distinct sources touch disjoint state (including the source's own
  // buffer pool). Stats and delay draws are deferred to the fence so
  // their order does not depend on thread scheduling.
  const auto us = static_cast<std::size_t>(source);
  lanes_[us].push_back(Staged{dest, tag, lane_seq_[us]++, logical_records,
                              stage_pools_[us].acquire(doubles)});
  ++epoch_msgs_[us];
  const std::uint64_t bytes = message_bytes(doubles);
  epoch_bytes_[us] += bytes;
  if (tracer_) {
    // Indexed by `source` like everything above: the event goes to the
    // source's private trace lane, the metric slots are the source's own.
    tracer_->record(source, trace::EventKind::kPut, dest,
                    static_cast<int>(tag), static_cast<double>(doubles),
                    static_cast<double>(bytes), epochs_, model_time_);
    auto& m = tracer_->metrics();
    m.add(m_msgs_sent_, source, 1.0);
    m.add(m_bytes_sent_, source, static_cast<double>(bytes));
    m.add(m_msgs_physical_, source, 1.0);
    m.add(m_msgs_logical_, source,
          static_cast<double>(logical_records));
    m.add(m_msgs_by_tag_[static_cast<std::size_t>(tag)], source, 1.0);
  }
  return lanes_[us].back().payload;
}

void Runtime::add_flops(int rank, double flops) {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  DSOUTH_CHECK(flops >= 0.0);
  epoch_flops_[static_cast<std::size_t>(rank)] += flops;
  if (tracer_) {
    // Indexed by `rank` like the accumulator above. Recording each charge
    // (rather than a per-epoch total) preserves call order in the rank's
    // lane, so an analyzer summing compute events per (rank, epoch)
    // reproduces epoch_flops_ bit-exactly — same addends, same order.
    tracer_->record(rank, trace::EventKind::kCompute, /*peer=*/-1,
                    /*tag=*/-1, flops, 0.0, epochs_, model_time_);
    tracer_->metrics().add(m_flops_, rank, flops);
  }
}

void Runtime::node_prepass() {
  const std::uint64_t closed_epoch = epochs_;
  const NodeTopology& topo = *topo_;
  const auto nn = static_cast<std::size_t>(topo.num_nodes());

  // Charge one physical hop to `payer`: tier accumulators (the machine
  // model's inputs), CommStats, the kHop trace event (into the payer's
  // lane, folded into this fence's merge by end_epoch — the kFault
  // pattern), and the per-rank node metrics. Hop events carry the same
  // (epoch, t_model) stamp as the puts they settle: the pre-pass runs
  // before the epoch is charged.
  const auto charge_hop = [&](int payer, int phys_dest, int hop_kind,
                              std::uint64_t bytes, std::uint64_t records) {
    const bool inter = trace::hop_is_inter(hop_kind);
    const auto up = static_cast<std::size_t>(payer);
    if (inter) {
      ++epoch_msgs_inter_[up];
      epoch_bytes_inter_[up] += bytes;
    } else {
      ++epoch_msgs_intra_[up];
      epoch_bytes_intra_[up] += bytes;
    }
    stats_.record_hop(inter, bytes);
    if (tracer_) {
      tracer_->record(payer, trace::EventKind::kHop, phys_dest, hop_kind,
                      static_cast<double>(bytes),
                      static_cast<double>(records), closed_epoch,
                      model_time_);
      auto& met = tracer_->metrics();
      met.add(inter ? m_node_msgs_inter_ : m_node_msgs_intra_, payer, 1.0);
      met.add(inter ? m_node_bytes_inter_ : m_node_bytes_intra_, payer,
              static_cast<double>(bytes));
    }
  };

  for (int s = 0; s < num_ranks_; ++s) {
    for (const Staged& m : lanes_[static_cast<std::size_t>(s)]) {
      const std::uint64_t bytes = message_bytes(m.payload.size());
      const bool same = topo.same_node(s, m.dest);
      bool dropped = false;
      if (kills_ && (faults_->dead(s, closed_epoch) ||
                     faults_->dead(m.dest, closed_epoch))) {
        // Dead-endpoint traffic dies at its source exactly like a dropped
        // message: the sender paid one direct hop, no relay ever saw it.
        dropped = true;
      } else if (faults_) {
        // decide() is a stateless hash of (epoch, src, dst, seq), so this
        // pre-pass draw is identical to the one the delivery merge makes
        // later and consumes no RNG stream.
        dropped = faults_->decide(closed_epoch, s, m.dest, m.seq,
                                  m.payload.size())
                      .drop;
      }
      if (same || dropped || !node_route_) {
        // Intra-node traffic and un-routed inter-node traffic go direct.
        // A dropped message died at its source: the sender still paid the
        // single-hop wire charge, and no relay ever saw it.
        charge_hop(s, m.dest,
                   same ? trace::kHopIntraDirect : trace::kHopInterDirect,
                   bytes, m.records);
        continue;
      }
      const int sn = topo.node_of(s);
      const int dn = topo.node_of(m.dest);
      const int src_leader = topo.leader_of(sn);
      if (s != src_leader) {
        charge_hop(s, src_leader, trace::kHopRelayUp, bytes, m.records);
      }
      const std::size_t g =
          (static_cast<std::size_t>(sn) * nn + static_cast<std::size_t>(dn)) *
              kNumTags +
          static_cast<std::size_t>(m.tag);
      if (group_puts_[g] == 0) group_touched_.push_back(g);
      ++group_puts_[g];
      group_records_[g] += m.records;
      group_doubles_[g] += m.payload.size();
      const int dst_leader = topo.leader_of(dn);
      if (m.dest != dst_leader) {
        charge_hop(dst_leader, m.dest, trace::kHopRelayDown, bytes,
                   m.records);
      }
    }
  }

  // One leader->leader physical message per touched (src node, dst node,
  // tag) group, emitted in ascending group index — deterministic whatever
  // order the puts were staged in (in-place sort on a persistent vector:
  // no allocation). A group of one ships bare, byte-identical to a direct
  // charge; larger groups are charged at the forward-frame size — magic
  // word plus a presence bitmap over the pair's static channel list
  // (wire::forward_frame_doubles, mirrored here so simmpi stays below the
  // wire layer in the dependency order).
  std::sort(group_touched_.begin(), group_touched_.end());
  for (const std::size_t g : group_touched_) {
    const std::size_t pair = g / kNumTags;
    const auto sn = static_cast<int>(pair / nn);
    const auto dn = static_cast<int>(pair % nn);
    const std::uint32_t puts = group_puts_[g];
    const std::uint64_t records = group_records_[g];
    const std::uint64_t doubles = group_doubles_[g];
    group_puts_[g] = 0;
    group_records_[g] = 0;
    group_doubles_[g] = 0;
    const std::uint32_t channels = node_pair_channels_[pair];
    DSOUTH_CHECK_MSG(puts <= channels,
                     "node pair (" << sn << " -> " << dn << ") forwarded "
                                   << puts << " puts but the plan has only "
                                   << channels << " channels");
    std::uint64_t bytes;
    if (puts == 1) {
      bytes = message_bytes(static_cast<std::size_t>(doubles));
    } else {
      const std::uint64_t bitmap_words =
          (static_cast<std::uint64_t>(channels) + 63) / 64;
      bytes = message_bytes(
          static_cast<std::size_t>(1 + bitmap_words + doubles));
    }
    const int src_leader = topo.leader_of(sn);
    const int dst_leader = topo.leader_of(dn);
    charge_hop(src_leader, dst_leader, trace::kHopInterLeader, bytes,
               records);
    stats_.record_forward(records);
    if (tracer_) {
      auto& met = tracer_->metrics();
      met.add(m_node_forward_frames_, src_leader, 1.0);
      met.add(m_node_forwarded_records_, src_leader,
              static_cast<double>(records));
    }
  }
  group_touched_.clear();
}

void Runtime::fence() {
  // Host profiling: the fence runs single-threaded, so its spans (and the
  // nested node-prepass / delivery-draw spans below) go to the runtime
  // lane. Null-attached, this is one branch.
  const prof::ScopedPhase prof_fence(prof_, num_ranks_,
                                     prof::PhaseId::kFence);

  // Node-aware accounting first (no-op without a topology): it must see
  // the staging lanes intact, and it fills the tier accumulators the
  // charging loop below reads.
  if (topo_) {
    const prof::ScopedPhase prof_prepass(prof_, num_ranks_,
                                         prof::PhaseId::kNodePrepass);
    node_prepass();
  }

  // Charge the machine model for this epoch. A straggler rank's cost is
  // multiplied by its slowdown before the max: the bulk-synchronous fence
  // then runs at the straggler's pace. With a topology attached the
  // charge is per physical hop on the two-tier network (rank_cost_tiered,
  // fed by the prepass) and the fence's message total is the physical hop
  // count; without one it is the legacy per-put accounting, bit for bit.
  double max_rank_cost = 0.0;
  std::uint64_t epoch_total_msgs = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    double rank_cost;
    if (topo_) {
      rank_cost = model_.rank_cost_tiered(
          epoch_flops_[i], epoch_msgs_intra_[i], epoch_bytes_intra_[i],
          epoch_msgs_inter_[i], epoch_bytes_inter_[i]);
      epoch_total_msgs += epoch_msgs_intra_[i] + epoch_msgs_inter_[i];
      epoch_msgs_intra_[i] = 0;
      epoch_bytes_intra_[i] = 0;
      epoch_msgs_inter_[i] = 0;
      epoch_bytes_inter_[i] = 0;
    } else {
      rank_cost = model_.rank_cost(epoch_flops_[i], epoch_msgs_[i],
                                   epoch_bytes_[i]);
      epoch_total_msgs += epoch_msgs_[i];
    }
    if (faults_) rank_cost *= faults_->slowdown(r);
    max_rank_cost = std::max(max_rank_cost, rank_cost);
    epoch_flops_[i] = 0.0;
    epoch_msgs_[i] = 0;
    epoch_bytes_[i] = 0;
  }
  last_epoch_seconds_ =
      model_.epoch_seconds(max_rank_cost, epoch_total_msgs, num_ranks_);
  model_time_ += last_epoch_seconds_;
  const std::uint64_t closed_epoch = epochs_;
  ++epochs_;

  // Fold pending per-tenant attributions (batched serving) into CommStats
  // in ascending source order — the same deterministic order the delivery
  // merge below consumes the staging lanes in. No-op unless a batch
  // configured tenants (set_num_tenants).
  for (std::size_t i = 0; i < tenant_lane_records_.size(); ++i) {
    if (tenant_lane_records_[i] == 0 && tenant_lane_doubles_[i] == 0) {
      continue;
    }
    stats_.record_tenant(i % num_tenants_, tenant_lane_records_[i],
                         tenant_lane_doubles_[i]);
    tenant_lane_records_[i] = 0;
    tenant_lane_doubles_[i] = 0;
  }

  // Fault-event hook: kFault events go into the SOURCE rank's trace lane
  // (mid-merge, like the puts they describe) and are folded into the
  // global stream by the end_epoch() below — which therefore runs AFTER
  // the merge loop. For fault-free runs the merge loop records nothing,
  // so the trace stream is byte-identical to the pre-fault ordering.
  auto record_fault = [this, closed_epoch](int src, int dest, int action,
                                           std::uint64_t seq, double detail) {
    if (tracer_) {
      tracer_->record(src, trace::EventKind::kFault, dest, action,
                      static_cast<double>(seq), detail, closed_epoch,
                      model_time_);
    }
  };

  // Per-message accounting, merged from the per-source staging lanes in
  // (source, send-order) order — exactly the chronological put order of a
  // sequential rank sweep, so stats accumulation and the delivery-delay
  // RNG consume in the same order regardless of which backend (or test)
  // staged the puts. The fence runs on a single thread after the backend
  // joins the epoch, so it may touch every rank's pools: each payload is
  // copied from its source's staging buffer into a buffer from the
  // DEST's window pool and the staging buffer returns to its source —
  // both pools stay closed per-rank loops, which is what keeps
  // steady-state traffic allocation-free.
  auto next_u64 = [this] {
    std::uint64_t z = (delivery_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (int s = 0; s < num_ranks_; ++s) {
    auto& lane = lanes_[static_cast<std::size_t>(s)];
    for (auto& m : lane) {
      stats_.record_send(s, m.tag, message_bytes(m.payload.size()),
                         m.records);
      if (kills_ && (faults_->dead(s, closed_epoch) ||
                     faults_->dead(m.dest, closed_epoch))) {
        // Permanent rank failure: traffic from or to a dead rank is
        // swallowed at the fence — the sender paid for the put
        // (record_send above), no other fault draw applies, and the
        // delivery RNG is not consumed, exactly like a fault drop.
        stats_.record_dead_drop(s);
        record_fault(s, m.dest, /*action=*/6, m.seq, 0.0);
        if (tracer_) tracer_->metrics().add(m_faults_killed_, s, 1.0);
        stage_pools_[static_cast<std::size_t>(s)].release(
            std::move(m.payload));
        continue;
      }
      faults::FaultDecision fd;
      if (faults_) {
        fd = faults_->decide(closed_epoch, s, m.dest, m.seq,
                             m.payload.size());
      }
      if (fd.drop) {
        // Dropped before the fabric: the sender still paid for the put
        // (record_send above, machine-model bytes), but the delivery-delay
        // RNG is NOT consumed — the drop decision replaces the delivery
        // path entirely, and skipping the draw here keeps the fault hash
        // draws and the delay stream mutually independent.
        stats_.record_drop(s);
        record_fault(s, m.dest, /*action=*/0, m.seq, 0.0);
        if (tracer_) tracer_->metrics().add(m_faults_dropped_, s, 1.0);
        stage_pools_[static_cast<std::size_t>(s)].release(
            std::move(m.payload));
        continue;
      }
      std::uint64_t deliver_epoch = closed_epoch;  // matures at this fence
      if (delivery_.delay_probability > 0.0) {
        const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
        if (u < delivery_.delay_probability) {
          const auto extra = 1 + static_cast<std::uint64_t>(
                                     next_u64() %
                                     static_cast<std::uint64_t>(
                                         delivery_.max_delay_epochs));
          deliver_epoch = closed_epoch + extra;
        }
      }
      if (async_) {
        // EventDriven fabric latency: a stateless per-message draw, clamped
        // together with any legacy DeliveryModel delay so the *non-fault*
        // delivery time never exceeds the policy's staleness bound. Fault
        // reordering/stalls below compose on top and may exceed it — a
        // fault is allowed to be worse than the fabric model.
        const prof::ScopedPhase prof_draw(prof_, num_ranks_,
                                          prof::PhaseId::kDeliveryPolicy);
        deliver_epoch += policy_->extra_latency(closed_epoch, s, m.dest,
                                                m.seq);
        deliver_epoch = std::min(deliver_epoch,
                                 closed_epoch + policy_->max_staleness());
      }
      if (fd.reorder_extra > 0) {
        deliver_epoch += static_cast<std::uint64_t>(fd.reorder_extra);
        record_fault(s, m.dest, /*action=*/2, m.seq,
                     static_cast<double>(fd.reorder_extra));
        if (tracer_) tracer_->metrics().add(m_faults_reordered_, s, 1.0);
      }
      if (faults_) {
        // A stalled sender's traffic is frozen until its stall window
        // closes (composes with delay/reorder by taking the max).
        const std::uint64_t hold = faults_->hold_until(s, closed_epoch);
        if (hold != closed_epoch) {
          record_fault(s, m.dest, /*action=*/5, m.seq,
                       static_cast<double>(hold - closed_epoch));
          deliver_epoch = std::max(deliver_epoch, hold);
        }
      }
      const auto ud = static_cast<std::size_t>(m.dest);
      const std::size_t delivered_len =
          fd.truncate ? fd.truncate_len : m.payload.size();
      std::vector<double> delivered = window_pools_[ud].acquire(delivered_len);
      std::copy(m.payload.begin(),
                m.payload.begin() + static_cast<std::ptrdiff_t>(delivered_len),
                delivered.begin());
      stage_pools_[static_cast<std::size_t>(s)].release(
          std::move(m.payload));
      if (fd.truncate) {
        stats_.record_corrupt(s);
        record_fault(s, m.dest, /*action=*/4, m.seq,
                     static_cast<double>(delivered_len));
        if (tracer_) tracer_->metrics().add(m_faults_corrupted_, s, 1.0);
      } else if (fd.corrupt) {
        double& slot = delivered[fd.corrupt_index];
        slot = std::bit_cast<double>(std::bit_cast<std::uint64_t>(slot) ^
                                     (1ULL << fd.corrupt_bit));
        stats_.record_corrupt(s);
        record_fault(s, m.dest, /*action=*/3, m.seq,
                     static_cast<double>(fd.corrupt_index) * 64.0 +
                         static_cast<double>(fd.corrupt_bit));
        if (tracer_) tracer_->metrics().add(m_faults_corrupted_, s, 1.0);
      }
      auto& sink =
          deliver_epoch < epochs_ ? fence_matured_[ud] : deferred_[ud];
      if (fd.duplicate) {
        // Two identical deliveries with the same (source, seq) key: the
        // stable maturation sort keeps them adjacent and in push order.
        std::vector<double> dup = window_pools_[ud].acquire(delivered_len);
        std::copy(delivered.begin(), delivered.end(), dup.begin());
        stats_.record_duplicate(s);
        record_fault(s, m.dest, /*action=*/1, m.seq, 0.0);
        if (tracer_) tracer_->metrics().add(m_faults_duplicated_, s, 1.0);
        sink.push_back(Deferred{s, m.tag, m.seq, closed_epoch, deliver_epoch,
                                arrival_counter_++, std::move(dup)});
      }
      sink.push_back(Deferred{s, m.tag, m.seq, closed_epoch, deliver_epoch,
                              arrival_counter_++, std::move(delivered)});
    }
    lane.clear();
  }

  // Permanent-failure sweep (kill plans only): purge in-flight deferred
  // messages whose source died after staging them — "its in-flight
  // traffic is dropped" — or whose destination is dead. Deterministic:
  // destination-ascending walk in held order, gated on the same monotone
  // dead() predicate every backend evaluates identically.
  if (kills_) {
    for (int r = 0; r < num_ranks_; ++r) {
      const auto i = static_cast<std::size_t>(r);
      auto& held = deferred_[i];
      const bool dest_dead = faults_->dead(r, closed_epoch);
      fence_keep_.clear();
      for (auto& d : held) {
        if (dest_dead || faults_->dead(d.source, closed_epoch)) {
          stats_.record_dead_drop(d.source);
          record_fault(d.source, r, /*action=*/6, d.seq, 1.0);
          if (tracer_) {
            tracer_->metrics().add(m_faults_killed_, d.source, 1.0);
          }
          window_pools_[i].release(std::move(d.payload));
        } else {
          fence_keep_.push_back(std::move(d));
        }
      }
      held.swap(fence_keep_);
    }
  }

  // Deliver matured messages (fresh plus previously-deferred ones whose
  // epoch has come), sorted by (source, send order) so every run is
  // bit-identical regardless of the order ranks were stepped in. Runs
  // BEFORE end_epoch() so the kDeliver events recorded into destination
  // lanes here fold into this fence's merge; bulk-synchronous runs record
  // nothing here, so their streams keep the pre-async ordering exactly.
  for (int r = 0; r < num_ranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    auto& held = deferred_[i];
    auto& ready = fence_matured_[i];
    fence_keep_.clear();
    for (auto& d : held) {
      if (d.deliver_epoch < epochs_) {
        ready.push_back(std::move(d));
      } else {
        fence_keep_.push_back(std::move(d));
      }
    }
    held.swap(fence_keep_);
    // Stable: duplicated messages share a (source, seq) key, and their
    // delivery order must not depend on the sort's tie-breaking, so the
    // arrival counter completes the key into a total order (equivalent to
    // a stable sort, but in-place — std::stable_sort's temp buffer would
    // cost an allocation per fence).
    std::sort(ready.begin(), ready.end(),
              [](const Deferred& a, const Deferred& b) {
                if (a.source != b.source) return a.source < b.source;
                if (a.seq != b.seq) return a.seq < b.seq;
                return a.arrival < b.arrival;
              });
    auto& win = windows_[i];
    for (auto& d : ready) {
      if (async_) {
        // Staleness = epochs between staging and this delivering fence
        // (which closed `closed_epoch`). 0 for same-fence delivery.
        const std::uint64_t staleness = closed_epoch - d.staged_epoch;
        stats_.record_async_delivery(r, staleness);
        if (tracer_) {
          tracer_->record(r, trace::EventKind::kDeliver, d.source,
                          static_cast<int>(d.tag),
                          static_cast<double>(staleness),
                          static_cast<double>(d.payload.size()), closed_epoch,
                          model_time_);
          auto& met = tracer_->metrics();
          met.add(m_async_delivered_, r, 1.0);
          met.add(m_async_staleness_sum_, r,
                  static_cast<double>(staleness));
          if (m_async_staleness_max_ != trace::kInvalidMetric &&
              static_cast<double>(staleness) >
                  met.value(m_async_staleness_max_, r)) {
            met.set(m_async_staleness_max_, r,
                    static_cast<double>(staleness));
          }
        }
      }
      win.push_back(Message{d.source, d.tag, std::move(d.payload)});
    }
    ready.clear();
  }

  if (tracer_) {
    // Merge the per-rank event lanes in (rank, record-order) order — the
    // same deterministic order the staged puts merged in above — and stamp
    // the fence event with the post-charge modeled time.
    tracer_->end_epoch(closed_epoch, model_time_, last_epoch_seconds_,
                       epoch_total_msgs);
  }
}

void Runtime::consume(int rank) {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  const auto i = static_cast<std::size_t>(rank);
  auto& win = windows_[i];
  auto& pool = window_pools_[i];
  for (auto& msg : win) pool.release(std::move(msg.payload));
  const std::size_t consumed = win.size();
  win.clear();
  // Swap-shrink a pathological window: a delivery burst (delayed-delivery
  // pileup) can leave capacity far above steady state. The floor keeps
  // ordinary small windows from thrashing on quiet epochs.
  constexpr std::size_t kShrinkFloor = 64;
  if (win.capacity() > kShrinkFloor && win.capacity() > 4 * consumed) {
    std::vector<Message>().swap(win);
  }
}

void Runtime::drain_delayed() {
  // Terminates because deferred deliver_epochs are fixed finite values and
  // every fence strictly increments epochs_; the guard turns a logic error
  // (a schedule handing out ever-later hold epochs) into a check failure
  // instead of a hang.
  for (std::uint64_t guard = 0;; ++guard) {
    DSOUTH_CHECK_MSG(guard < (1ULL << 20), "drain_delayed did not converge");
    bool any = false;
    for (const auto& lane : lanes_) {
      if (!lane.empty()) any = true;
    }
    for (const auto& held : deferred_) {
      if (!held.empty()) any = true;
    }
    if (!any) break;
    fence();
  }
}

void Runtime::reset_stats() {
  stats_.reset();
  // A reset means "nothing has been sent yet" — attributions staged since
  // the last fence must not leak into the next measurement window.
  std::fill(tenant_lane_records_.begin(), tenant_lane_records_.end(), 0);
  std::fill(tenant_lane_doubles_.begin(), tenant_lane_doubles_.end(), 0);
}

void Runtime::set_num_tenants(std::size_t n) {
  num_tenants_ = n;
  const std::size_t slots = static_cast<std::size_t>(num_ranks_) * n;
  tenant_lane_records_.assign(slots, 0);
  tenant_lane_doubles_.assign(slots, 0);
  stats_.configure_tenants(n);
}

void Runtime::add_tenant_records(int source, int tenant,
                                 std::uint64_t records,
                                 std::uint64_t doubles) {
  DSOUTH_CHECK(source >= 0 && source < num_ranks_);
  DSOUTH_CHECK(tenant >= 0 &&
               static_cast<std::size_t>(tenant) < num_tenants_);
  const std::size_t i =
      static_cast<std::size_t>(source) * num_tenants_ +
      static_cast<std::size_t>(tenant);
  tenant_lane_records_[i] += records;
  tenant_lane_doubles_[i] += doubles;
}

}  // namespace dsouth::simmpi
