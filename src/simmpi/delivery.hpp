#pragma once

/// \file delivery.hpp
/// Pluggable delivery policies for the simulated runtime (DESIGN.md §12).
///
/// Historically the fence *was* the delivery semantics: every put staged in
/// epoch e landed in its destination window at the fence closing e — the
/// bulk-synchronous superstep of the paper's MPI formulation. That logic is
/// now one DeliveryPolicy among several. BulkSynchronousPolicy reproduces
/// it byte-for-byte (it is the Runtime default, and runs with it selected
/// are regression-gated to be byte-identical to the pre-policy code). The
/// EventDrivenPolicy instead matures each message on a deterministic
/// virtual clock: a per-message latency draw of `min..max` extra epochs,
/// clamped so no message is delivered more than `max_staleness` epochs
/// after it was staged — the bounded-staleness asynchronous regime of
/// Hong's D-iteration and the Zou & Magoulès synchronization-reduction
/// survey (PAPERS.md).
///
/// Determinism contract (same as src/faults): every latency draw is a
/// *stateless* SplitMix64-style hash of (seed, salt, epoch, src, dst, seq).
/// A message's key is assigned identically whichever execution backend
/// staged it, so asynchronous runs are bit-identical across the sequential
/// and threaded backends, and the draws neither consume nor perturb the
/// legacy DeliveryModel RNG stream or the fault hashes (distinct salt).

#include <cstdint>

namespace dsouth::simmpi {

/// Discriminator the Runtime and solvers branch on. Solvers switch to
/// single-epoch relax-on-arrival stepping exactly when the runtime reports
/// async_delivery() — an EventDriven policy with a nonzero staleness bound
/// (DistStationarySolver::async_mode()).
enum class DeliveryPolicyKind : std::uint8_t {
  kBulkSynchronous = 0,
  kEventDriven = 1,
};

/// How staged puts mature into destination windows. Implementations must
/// be immutable after construction (shared by const pointer with a Runtime
/// whose rank programs run concurrently) and pure (stateless draws only).
class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;

  virtual DeliveryPolicyKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Extra epochs of fabric latency for the message (src -> dst) with
  /// per-source send counter `seq`, staged in `epoch`. Pure function of
  /// the policy's configuration and the arguments.
  virtual std::uint64_t extra_latency(std::uint64_t epoch, int src, int dst,
                                      std::uint64_t seq) const = 0;

  /// Bound enforced by the runtime on non-fault delay: a message staged in
  /// epoch e is delivered no later than the fence closing epoch
  /// e + max_staleness(). (Fault-injection reordering and stalls compose
  /// on top and may exceed the bound — a fault is allowed to be worse than
  /// the fabric model, see docs/resilience.md.)
  virtual std::uint64_t max_staleness() const = 0;
};

/// The classic fence: every message matures at the fence that closes the
/// epoch it was staged in. Zero latency, zero staleness. Runs with this
/// policy are byte-identical to the pre-policy runtime.
class BulkSynchronousPolicy final : public DeliveryPolicy {
 public:
  DeliveryPolicyKind kind() const override {
    return DeliveryPolicyKind::kBulkSynchronous;
  }
  const char* name() const override { return "bulk_synchronous"; }
  std::uint64_t extra_latency(std::uint64_t, int, int,
                              std::uint64_t) const override {
    return 0;
  }
  std::uint64_t max_staleness() const override { return 0; }
};

/// The shared immutable BulkSynchronousPolicy instance the Runtime
/// defaults to (so an unconfigured Runtime never branches on policy
/// presence — there is always one attached).
const DeliveryPolicy& bulk_synchronous_policy();

/// EventDrivenPolicy knobs. Defaults give a mildly asynchronous fabric:
/// uniform 0..3 extra epochs of latency, staleness capped at 4.
struct EventDrivenOptions {
  std::uint64_t seed = 0xA51CULL;
  /// Latency draw bounds (epochs), inclusive: 0 <= min <= max.
  int min_latency_epochs = 0;
  int max_latency_epochs = 3;
  /// Delivery-time bound (see DeliveryPolicy::max_staleness). 0 collapses
  /// the policy to BulkSynchronous outright: the Runtime then treats the
  /// run as BSP (no deliver events, no async metrics, solvers keep their
  /// fenced stepping), byte-identical to BulkSynchronousPolicy — the
  /// reduction tests rely on this.
  std::uint64_t max_staleness = 4;
};

/// Messages mature on a deterministic virtual clock: each gets a stateless
/// uniform latency draw in [min_latency_epochs, max_latency_epochs],
/// clamped to max_staleness by the runtime.
class EventDrivenPolicy final : public DeliveryPolicy {
 public:
  explicit EventDrivenPolicy(EventDrivenOptions opt = {});

  const EventDrivenOptions& options() const { return opt_; }

  DeliveryPolicyKind kind() const override {
    return DeliveryPolicyKind::kEventDriven;
  }
  const char* name() const override { return "event_driven"; }
  std::uint64_t extra_latency(std::uint64_t epoch, int src, int dst,
                              std::uint64_t seq) const override;
  std::uint64_t max_staleness() const override { return opt_.max_staleness; }

 private:
  EventDrivenOptions opt_;
};

}  // namespace dsouth::simmpi
