#pragma once

/// \file node_topology.hpp
/// Two-level (node × rank) machine topology for the simulated runtime.
///
/// Real machines are not flat: P MPI ranks live on P/c nodes of c cores
/// each, and an inter-node message costs an order of magnitude more than
/// an intra-node one. NodeTopology is the rank → node map the runtime and
/// the layout share (DESIGN.md §13, docs/communication.md): it fixes, per
/// node, one *leader* rank — deterministically the lowest rank id on the
/// node — through which node-aware routing funnels all inter-node traffic
/// (fan-in at the source node's leader, one aggregated message between
/// leaders, fan-out at the destination node's leader), the aggregation of
/// Bienz/Gropp/Olson's *Node Aware SpMV* (PAPERS.md) applied to the same
/// ghost-exchange pattern.
///
/// The map is pure data: construction validates it, everything else is
/// O(1) lookup. A *flat* topology — every node holding exactly one rank —
/// carries no information (every message is inter-node, no aggregation is
/// possible), and the runtime treats it exactly like no topology at all,
/// which is what keeps flat-topology runs byte-identical to topology-free
/// ones (the same degeneracy contract as staleness-0 EventDriven delivery,
/// simmpi/delivery.hpp).

#include <cstdint>
#include <vector>

namespace dsouth::simmpi {

class NodeTopology {
 public:
  /// Pack `num_ranks` ranks onto nodes of `ranks_per_node` consecutive
  /// ranks each (the common contiguous-blocks mapping of real MPI
  /// launchers): rank r lives on node r / ranks_per_node. The last node
  /// may be partially filled. Requires num_ranks >= 1 and
  /// 1 <= ranks_per_node.
  static NodeTopology ranks_per_node(int num_ranks, int ranks_per_node);

  /// Explicit rank → node map. Node ids must be dense (every id in
  /// [0, max+1) used by at least one rank) so num_nodes() is meaningful.
  static NodeTopology explicit_map(std::vector<int> node_of_rank);

  NodeTopology() = default;

  int num_ranks() const { return static_cast<int>(node_of_.size()); }
  int num_nodes() const { return static_cast<int>(leader_of_.size()); }

  /// The node rank `r` lives on.
  int node_of(int r) const { return node_of_[static_cast<std::size_t>(r)]; }

  /// The node's leader: deterministically the lowest rank id on the node
  /// (so leader election never depends on construction or backend order).
  int leader_of(int node) const {
    return leader_of_[static_cast<std::size_t>(node)];
  }

  bool is_leader(int r) const { return leader_of(node_of(r)) == r; }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Ranks on `node`, in ascending order (leader first).
  const std::vector<int>& ranks_on(int node) const {
    return ranks_on_[static_cast<std::size_t>(node)];
  }

  /// True when every node holds exactly one rank. Degenerate: no message
  /// is intra-node and no aggregation is possible; the runtime treats a
  /// flat topology exactly like no topology (byte-identity contract).
  bool is_flat() const { return flat_; }

 private:
  std::vector<int> node_of_;                ///< rank -> node
  std::vector<int> leader_of_;              ///< node -> lowest rank on it
  std::vector<std::vector<int>> ranks_on_;  ///< node -> ranks, ascending
  bool flat_ = true;
};

}  // namespace dsouth::simmpi
