#pragma once

/// \file rank_context.hpp
/// Rank-scoped facade over the simulated runtime.
///
/// The paper's algorithms are SPMD: every MPI rank runs the *same* per-rank
/// program between RMA epochs. A RankContext is the view of the Runtime
/// that one such program is allowed to have — its own window, its own flop
/// counter, puts originating from itself. Solver phase code written against
/// a RankContext is "the code one rank runs", and an ExecutionBackend
/// (execution.hpp) decides whether those programs run on one thread or
/// many; the Runtime's per-source staging lanes make either choice produce
/// bit-identical results.
///
/// Thread-safety contract (matches Runtime's): during an epoch, at most one
/// thread drives a given rank. Distinct ranks may run concurrently; all the
/// runtime state a RankContext touches is indexed by this rank.

#include <span>

#include "simmpi/runtime.hpp"

namespace dsouth::simmpi {

class RankContext {
 public:
  RankContext(Runtime& rt, int rank) : rt_(&rt), rank_(rank) {}

  int rank() const { return rank_; }
  int num_ranks() const { return rt_->num_ranks(); }
  const MachineModel& model() const { return rt_->model(); }

  /// Messages delivered to this rank and not yet consumed (see
  /// Runtime::window).
  std::span<const Message> window() const { return rt_->window(rank_); }

  /// Discard this rank's window contents (call after processing them).
  void consume() { rt_->consume(rank_); }

  /// One-sided put originating from this rank.
  void put(int dest, MsgTag tag, std::span<const double> payload) {
    rt_->put(rank_, dest, tag, payload);
  }

  /// Zero-copy put originating from this rank: reserve a staged message
  /// and encode into the returned span directly (see Runtime::stage).
  std::span<double> stage(int dest, MsgTag tag, std::size_t doubles,
                          std::uint64_t logical_records = 1) {
    return rt_->stage(rank_, dest, tag, doubles, logical_records);
  }

  /// Report local computation performed by this rank in this epoch.
  void add_flops(double flops) { rt_->add_flops(rank_, flops); }

  /// Attribute `records` wire records totalling `doubles` payload doubles,
  /// staged by this rank, to batch tenant `tenant` (see
  /// Runtime::add_tenant_records). Only the batched serving path calls
  /// this; unbatched runs never configure tenants.
  void add_tenant_records(int tenant, std::uint64_t records,
                          std::uint64_t doubles) {
    rt_->add_tenant_records(rank_, tenant, records, doubles);
  }

  /// True when a trace::Tracer is attached to the runtime. Rank phases use
  /// this to skip observer-side work (e.g. computing a norm only needed
  /// for the trace record) on untraced runs.
  bool tracing() const { return rt_->tracer() != nullptr; }

  /// Record a solver-level trace event (relax/absorb) for this rank.
  /// Inlined no-op when untraced; never perturbs simulation results.
  void trace_event(trace::EventKind kind, double a0 = 0.0, double a1 = 0.0) {
    rt_->trace_rank_event(rank_, kind, a0, a1);
  }

  /// Bump this rank's slot of a registered metric (no-op when untraced or
  /// when `id` is trace::kInvalidMetric).
  void metric_add(trace::MetricId id, double v) {
    rt_->metric_add(id, rank_, v);
  }

 private:
  Runtime* rt_;
  int rank_;
};

}  // namespace dsouth::simmpi
