#pragma once

/// \file machine_model.hpp
/// The α–β–γ performance model that substitutes for wall-clock time on the
/// paper's Cori testbed (DESIGN.md §1). Each epoch (a post/start …
/// complete/wait access window in the MPI-3 RMA formulation) costs
///
///   T_epoch = max_p ( flops_p · c_flop + msgs_p · α + bytes_p · β )
///           + γ · (total messages in epoch) / P
///           + σ
///
/// The max term is the bulk-synchronous critical path (every rank waits for
/// the slowest), the γ term models network load from the aggregate message
/// volume (what makes Parallel Southwell's explicit-residual storms and
/// Block Jacobi's all-ranks-send pattern expensive on a real fabric), and σ
/// is the fixed cost of opening/closing the epoch.
///
/// Reported times are "model seconds": the paper's *shape* (method ordering,
/// crossovers, the strong-scaling U-curve) is reproduced; absolute values
/// are not comparable to Cori hardware.

#include <cstdint>

namespace dsouth::simmpi {

struct MachineModel {
  double alpha = 2.0e-6;       ///< per-message latency (s)
  double beta = 5.0e-10;       ///< per-byte cost (s)
  double flop_time = 5.0e-10;  ///< per-flop cost (s)
  double gamma = 2.0e-5;       ///< network-load cost per (message / rank) (s)
  double sigma = 1.0e-6;       ///< per-epoch synchronization overhead (s)
  /// Intra-node α/β (docs/communication.md): shared-memory transfers on
  /// the same node are roughly an order of magnitude cheaper per message
  /// and per byte than the network. Only consulted when a NodeTopology is
  /// attached to the runtime; the flat model above then keeps its meaning
  /// as the *inter-node* tier, so topology-free runs are untouched.
  double alpha_intra = 2.0e-7;  ///< per intra-node message latency (s)
  double beta_intra = 5.0e-11;  ///< per intra-node byte cost (s)

  /// Per-rank "busy" cost (the quantity maximized over ranks).
  double rank_cost(double flops, std::uint64_t msgs,
                   std::uint64_t bytes) const {
    return flops * flop_time + static_cast<double>(msgs) * alpha +
           static_cast<double>(bytes) * beta;
  }

  /// Two-tier per-rank cost under a node topology: inter-node traffic
  /// pays the flat α/β (same addends in the same order as rank_cost, so
  /// an all-inter epoch costs bit-identically to the flat model), plus
  /// the cheap intra-node terms.
  double rank_cost_tiered(double flops, std::uint64_t msgs_intra,
                          std::uint64_t bytes_intra, std::uint64_t msgs_inter,
                          std::uint64_t bytes_inter) const {
    return rank_cost(flops, msgs_inter, bytes_inter) +
           static_cast<double>(msgs_intra) * alpha_intra +
           static_cast<double>(bytes_intra) * beta_intra;
  }

  /// Cost of one epoch given the critical-path (max) rank cost and the
  /// epoch's aggregate message count.
  double epoch_seconds(double max_rank_cost, std::uint64_t total_msgs,
                       int num_ranks) const {
    return max_rank_cost +
           gamma * static_cast<double>(total_msgs) /
               static_cast<double>(num_ranks) +
           sigma;
  }
};

}  // namespace dsouth::simmpi
