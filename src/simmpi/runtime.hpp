#pragma once

/// \file runtime.hpp
/// Deterministic simulated one-sided message-passing runtime.
///
/// This is the repository's substitute for MPI-3 RMA on a real cluster
/// (DESIGN.md §1). It simulates P ranks executing in *epochs*. Within an
/// epoch a rank may read its window (the messages delivered at the previous
/// fence), do local compute (reported via add_flops), and `put()` data into
/// other ranks' windows. `fence()` closes the epoch: staged puts become
/// visible in the destination windows, the machine model charges the epoch,
/// and per-put statistics accumulate.
///
/// Correspondence with the paper's MPI formulation:
///   MPI_Win_allocate            -> Runtime construction (one window/rank)
///   MPI_Win_post/start          -> implicit epoch open after fence()
///   MPI_Put                     -> put()
///   MPI_Win_complete/wait       -> fence()
/// The paper's algorithms are bulk-synchronous per parallel step (every
/// rank opens and closes the same access epochs), so this superstep
/// semantics is exact, and it makes every experiment bit-reproducible.
///
/// *When* a staged put becomes visible is decided by a pluggable
/// DeliveryPolicy (delivery.hpp): the default BulkSynchronousPolicy
/// delivers at the closing fence exactly as above, while EventDrivenPolicy
/// matures messages on a deterministic virtual clock with bounded
/// staleness — the asynchronous regime the paper's deadlock discussion is
/// about. Either way delivery stays bit-reproducible across backends.
///
/// Concurrency contract (the ExecutionBackend discipline, execution.hpp):
/// within an epoch, at most one thread drives a given rank, and every call
/// it makes is indexed by that rank — put(source=rank, ...) appends to the
/// rank's own staging lane, add_flops(rank, ...) bumps the rank's own
/// counter, window(rank)/consume(rank) touch the rank's own window. Ranks
/// therefore never share mutable state mid-epoch and may run on concurrent
/// threads. fence() is called by exactly one thread after the epoch's rank
/// programs have completed (the backend joins them); it merges the staging
/// lanes in (source, send-order) order — identical to the chronological
/// put order of a sequential rank sweep — so delivery order, delivery-delay
/// draws, CommStats, and modeled time are bit-identical whichever backend
/// staged the puts.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "prof/prof.hpp"
#include "simmpi/delivery.hpp"
#include "simmpi/machine_model.hpp"
#include "simmpi/node_topology.hpp"
#include "simmpi/stats.hpp"
#include "trace/trace.hpp"

namespace dsouth::faults {
class FaultSchedule;
}

namespace dsouth::simmpi {

/// A delivered message as seen in the destination window.
struct Message {
  int source = -1;
  MsgTag tag = MsgTag::kOther;
  std::vector<double> payload;
};

/// Optional weak-delivery model: each put is, with `delay_probability`,
/// deferred by 1..max_delay_epochs extra fences (deterministic given the
/// seed). Models an asynchronous/congested fabric where one-sided writes
/// land late; note same-source messages may then be *observed out of
/// order* — exactly the staleness regime the paper's deadlock discussion
/// is about. Default: no delays (faithful bulk-synchronous epochs).
struct DeliveryModel {
  double delay_probability = 0.0;
  int max_delay_epochs = 2;
  std::uint64_t seed = 0xDE1A7ULL;
};

/// Options accompanying a NodeTopology attachment (set_node_topology).
struct NodeRoutingOptions {
  /// Route inter-node records through one leader rank per node: relay up
  /// to the source-node leader, one aggregated leader->leader message per
  /// (source node, destination node, tag) group, relay down to the final
  /// destination. When false the topology only *classifies* traffic into
  /// intra-/inter-node tiers (every message a direct hop) — the
  /// apples-to-apples baseline the node-aware bench compares against.
  bool route_via_leaders = true;
  /// Dense num_nodes × num_nodes (row-major) count of static plan channels
  /// crossing each ordered node pair — exactly
  /// wire::NodeCommPlan::pair_channel_counts(). The runtime needs only the
  /// counts (to size forward-frame presence bitmaps), which is what keeps
  /// simmpi below the wire layer in the dependency order. Required (and
  /// checked) when route_via_leaders is true; ignored otherwise.
  std::vector<std::uint32_t> pair_channel_counts;
};

/// Complete deterministic mid-run runtime state, captured between epochs
/// (elastic checkpoint/restart — src/elastic, DESIGN.md §15). Everything
/// here is bit-identical across execution backends, so a serialized
/// snapshot is too. Staging lanes must be empty at capture (checked): a
/// checkpoint is taken at a step boundary, after the fence.
struct RuntimeState {
  explicit RuntimeState(int num_ranks) : stats(num_ranks) {}

  std::uint64_t epochs = 0;
  double model_time = 0.0;
  double last_epoch_seconds = 0.0;
  std::uint64_t delivery_state = 0;   ///< delay-draw SplitMix64 cursor
  std::uint64_t arrival_counter = 0;  ///< Deferred::arrival source
  std::vector<std::uint64_t> lane_seq;  ///< per-source send counters
  CommStats stats;                      ///< full counter snapshot

  /// A message sitting delivered-but-unconsumed in a window.
  struct WindowMsg {
    int dest = -1;
    int source = -1;
    MsgTag tag = MsgTag::kOther;
    std::vector<double> payload;
  };
  std::vector<WindowMsg> window_msgs;  ///< in (dest, window order)

  /// A message still in flight (delayed delivery / reorder / stall).
  struct InFlight {
    int dest = -1;
    int source = -1;
    MsgTag tag = MsgTag::kOther;
    std::uint64_t seq = 0;
    std::uint64_t staged_epoch = 0;
    std::uint64_t deliver_epoch = 0;
    std::uint64_t arrival = 0;
    std::vector<double> payload;
  };
  std::vector<InFlight> deferred;  ///< in (dest, held order)
};

class Runtime {
 public:
  explicit Runtime(int num_ranks, MachineModel model = {},
                   DeliveryModel delivery = {});

  int num_ranks() const { return num_ranks_; }
  const MachineModel& model() const { return model_; }

  /// Messages delivered to `rank` and not yet consumed, in fence order
  /// (within a fence: sorted by source rank, ties by send order). Windows
  /// accumulate across fences until consume() — mirroring one-sided RMA,
  /// where written data persists until the target processes it.
  std::span<const Message> window(int rank) const;

  /// Discard `rank`'s window contents (call after processing them).
  /// Payload buffers return to the rank's window pool for reuse, and a
  /// pathologically over-grown window (capacity > 4× the consumed size
  /// after a delivery burst) is swap-shrunk so burst capacity is not held
  /// forever.
  void consume(int rank);

  /// One-sided put: stage `payload` for delivery into `dest`'s window at
  /// the next fence. Counts as exactly one message from `source`. Staged
  /// into `source`'s private lane; safe to call concurrently from distinct
  /// sources. Per-message accounting (stats, delivery-delay draws) happens
  /// at the fence, in (source, send-order) order.
  /// Implemented as stage() + copy; callers that can encode in place
  /// should use stage() directly and skip the copy.
  void put(int source, int dest, MsgTag tag, std::span<const double> payload);

  /// Zero-copy put: reserve a `doubles`-long staged message from `source`
  /// to `dest` and return its payload span for the caller to encode into
  /// directly. The buffer comes from the source's free-list pool (no heap
  /// allocation once warm) and the span stays valid until the next
  /// fence(). The caller must write every element before the fence.
  ///
  /// `logical_records` is the number of wire records the message carries
  /// (> 1 for coalesced frames, see wire/comm_plan.hpp): CommStats and the
  /// "simmpi.msgs_logical" metric count records, while every physical
  /// counter (per-put stats, bytes, the machine model) counts this one
  /// message. Accounting is otherwise identical to put().
  std::span<double> stage(int source, int dest, MsgTag tag,
                          std::size_t doubles,
                          std::uint64_t logical_records = 1);

  /// Report local computation performed by `rank` in this epoch (flops).
  void add_flops(int rank, double flops);

  /// Close the epoch: deliver staged puts, charge the machine model,
  /// clear per-epoch counters. Single caller at a time (the backend joins
  /// the epoch's rank programs first).
  void fence();

  /// Cumulative modeled time (seconds) over all fenced epochs.
  double model_time_seconds() const { return model_time_; }

  /// Modeled time charged by the most recent fence().
  double last_epoch_seconds() const { return last_epoch_seconds_; }

  std::uint64_t epochs_completed() const { return epochs_; }

  /// Messages currently held back — by the delivery model's delay draws
  /// or by fault-injection reordering/stalls — awaiting a later fence.
  std::uint64_t delayed_in_flight() const {
    std::uint64_t n = 0;
    for (const auto& held : deferred_) n += held.size();
    return n;
  }

  /// Run extra empty fences until every staged or deferred message has
  /// landed in its destination window. Semantics:
  ///   - puts staged since the last fence are fenced first (an implicit
  ///     epoch close), then fences repeat while the delivery model or the
  ///     fault schedule still holds messages in flight;
  ///   - windows are NOT consumed — drained messages stay visible until
  ///     the ranks call consume(), exactly as after a normal fence;
  ///   - every extra fence charges the machine model for an (otherwise
  ///     empty) epoch and increments epochs_completed(), so modeled time
  ///     advances — drain before reading a "final" modeled time;
  ///   - no-op when nothing is staged or deferred.
  void drain_delayed();

  const CommStats& stats() const { return stats_; }

  /// Zero the communication counters (e.g. to measure a phase in
  /// isolation). The explicit API replaces the old mutable stats()
  /// accessor — accounting is written only by the runtime itself. Also
  /// discards per-tenant tallies still waiting in their staging lanes for
  /// the next fence — a reset means "nothing has been sent", including
  /// attributions not yet folded into CommStats.
  void reset_stats();

  /// Declare `n` co-scheduled batch tenants (dist/batch.hpp). Sizes the
  /// per-source tenant-attribution lanes and CommStats' tenant slots.
  /// Call before the first epoch, like set_tracer; n = 0 (the default)
  /// disables tenant accounting entirely.
  void set_num_tenants(std::size_t n);
  std::size_t num_tenants() const { return num_tenants_; }

  /// Attribute `records` wire records totalling `doubles` payload doubles,
  /// staged by `source`, to batch tenant `tenant`. Same concurrency
  /// discipline as put(): writes only `source`'s private lane, so distinct
  /// ranks may call concurrently; the fence folds the lanes into CommStats
  /// in ascending source order (deterministic, like every other counter).
  void add_tenant_records(int source, int tenant, std::uint64_t records,
                          std::uint64_t doubles);

  /// Attach a structured-event tracer (docs/observability.md). Not owned;
  /// must outlive the runtime (or be detached with nullptr). Registers the
  /// runtime's metrics ("simmpi.msgs_sent" etc.) into the tracer's
  /// registry. Call before the first epoch: registration is not
  /// thread-safe against in-flight rank programs, and attaching mid-run
  /// would start the trace at a nonzero epoch.
  ///
  /// Determinism: the trace stream inherits the fence-merge guarantee —
  /// per-rank event lanes merge at each fence() in (source, record-order)
  /// order, so the stream is bit-identical across execution backends.
  /// With no tracer attached every hook below is an inlined null test and
  /// results are byte-identical to an untraced build.
  void set_tracer(trace::Tracer* tracer);

  /// The attached tracer, or nullptr.
  trace::Tracer* tracer() const { return tracer_; }

  /// Attach a compiled fault-injection schedule (src/faults,
  /// docs/resilience.md). Not owned; must outlive the runtime (or be
  /// detached with nullptr). The schedule is consulted once per staged
  /// message at fence time — drops, duplications, reordering, payload
  /// corruption/truncation, stalls — and straggler slowdowns multiply the
  /// per-rank epoch cost. Call before the first epoch, like set_tracer.
  ///
  /// Composition and determinism: fault draws are stateless hashes of
  /// (epoch, src, dst, seq), so they neither consume nor perturb the
  /// DeliveryModel's RNG stream, and runs are bit-identical across
  /// execution backends. With no schedule attached (the default) every
  /// hook is an inlined null test and behaviour is byte-identical to a
  /// build that never heard of fault injection. When both a tracer and a
  /// schedule are attached (either order), the runtime registers the
  /// "simmpi.faults_*" counters and emits kFault trace events.
  void set_fault_schedule(const faults::FaultSchedule* schedule);

  /// The attached fault schedule, or nullptr.
  const faults::FaultSchedule* fault_schedule() const { return faults_; }

  /// True when `rank` is permanently dead at the current epoch (a fault
  /// schedule with kills is attached and its kill epoch has passed —
  /// faults::FaultSchedule::dead). Stable mid-epoch: the epoch counter
  /// only advances at the fence, so rank programs may consult this. Dead
  /// ranks stop relaxing (the solver base skips their phases), their
  /// staged and in-flight traffic is swallowed at the fence, and traffic
  /// addressed to them is swallowed too — peers observe silence. The
  /// elastic subsystem (src/elastic) rebuilds the layout around them.
  bool rank_dead(int rank) const;

  /// Capture the complete deterministic runtime state (epoch/model-time
  /// cursors, RNG state, send counters, CommStats, unconsumed windows,
  /// in-flight deferred messages) for an elastic checkpoint. Must be
  /// called between epochs (checked: staging lanes empty).
  RuntimeState capture_state() const;

  /// Restore a previously captured state. The runtime must have the same
  /// rank count and empty staging lanes; windows and deferred queues are
  /// replaced wholesale. Continuing after a same-layout restore is
  /// byte-identical to never having snapshotted (tests/test_elastic.cpp).
  void restore_state(const RuntimeState& state);

  /// Attach a delivery policy (simmpi/delivery.hpp). Not owned; must
  /// outlive the runtime. Defaults to the shared BulkSynchronousPolicy,
  /// under which behaviour is byte-identical to the pre-policy runtime.
  /// Call before the first epoch, like set_tracer: switching policies
  /// mid-run would mix delivery semantics within one trace.
  ///
  /// Under an EventDriven policy each message's delivery fence is pushed
  /// back by the policy's stateless latency draw, clamped so no message
  /// lands more than max_staleness() epochs after it was staged; the
  /// runtime then counts deliveries and staleness in CommStats, and — when
  /// a tracer is also attached — registers the "simmpi.async_*" metrics
  /// and emits kDeliver trace events into destination lanes.
  void set_delivery_policy(const DeliveryPolicy* policy);

  /// The attached policy (never null — BulkSynchronous by default).
  const DeliveryPolicy& delivery_policy() const { return *policy_; }

  /// True when the attached policy is EventDriven — the solvers' cue to
  /// switch to single-epoch relax-on-arrival stepping.
  bool async_delivery() const { return async_; }

  /// Attach a two-level node topology (node_topology.hpp,
  /// docs/communication.md). Not owned; must outlive the runtime (or be
  /// detached with nullptr). Call before the first epoch, like set_tracer.
  ///
  /// With a (non-flat) topology attached the fence charges the machine
  /// model per *physical hop* on the two-tier network instead of per
  /// staged put: intra-node hops at (alpha_intra, beta_intra), inter-node
  /// hops at (alpha, beta) — see MachineModel::rank_cost_tiered. Delivery
  /// itself is untouched: windows receive exactly the same payloads in
  /// exactly the same order as without a topology, so solver iterates are
  /// bit-identical with the feature on or off, under either execution
  /// backend, and composed with faults, async delivery, or coalescing.
  /// The topology changes what the simulated wire *costs*, never what it
  /// *delivers* — the invariant DESIGN.md §13 pins down.
  ///
  /// Hop accounting (trace::EventKind::kHop, recorded into the paying
  /// rank's lane; CommStats tier counters; "simmpi.node_*" metrics when a
  /// tracer is attached):
  ///   - same-node put            -> one intra direct hop charged to src;
  ///   - inter-node, routing off  -> one inter direct hop charged to src;
  ///   - inter-node, routing on   -> relay-up (src -> src leader, intra,
  ///     skipped when src is its leader), one aggregated leader->leader
  ///     inter hop per (src node, dst node, tag) group charged to the src
  ///     leader, relay-down (dst leader -> dst, intra, skipped when dst is
  ///     its leader). A group of one ships bare (byte-identical to the
  ///     direct charge); groups of two or more are charged at the
  ///     forward-frame size (wire::forward_frame_doubles).
  ///   - a message the fault schedule drops died at its source: it is
  ///     charged as a single direct hop and no relay ever saw it.
  ///
  /// Attaching a *flat* topology (every node holds exactly one rank) is
  /// equivalent to detaching: there is no intra-node tier to model, the
  /// runtime takes the legacy path outright, and results stay
  /// byte-identical to a build that never heard of topologies — the same
  /// degeneracy contract the staleness-0 EventDriven policy follows.
  void set_node_topology(const NodeTopology* topo,
                         NodeRoutingOptions opts = {});

  /// The effective topology, or nullptr (never a flat topology — those
  /// degenerate to detached at attach time).
  const NodeTopology* node_topology() const { return topo_; }

  /// True when inter-node records route through node leaders (only
  /// meaningful while node_topology() is attached).
  bool node_routing() const { return node_route_; }

  /// Attach a host-side wall-clock profiler (prof/prof.hpp). Not owned;
  /// must outlive the runtime (or be detached with nullptr). Call before
  /// the first epoch, like set_tracer. The profiler must have a lane per
  /// rank plus the runtime lane (Profiler(num_ranks())).
  ///
  /// Unlike every other attachment, the profiler observes *host* time —
  /// nondeterministic by nature — so the contract is inverted: profiling
  /// must never feed back into the simulation. The runtime only ever
  /// writes ScopedPhase spans around its own work (stage, fence, the
  /// delivery-draw and node-prepass sections); with no profiler attached
  /// each hook is an inlined null test and behaviour is byte-identical to
  /// a build that never heard of profiling (tests/test_prof.cpp).
  void set_profiler(prof::Profiler* profiler);

  /// The attached profiler, or nullptr.
  prof::Profiler* profiler() const { return prof_; }

  /// Record a solver-level event for `rank` (relax/absorb — see
  /// trace::EventKind). Inlined no-op when no tracer is attached. Safe to
  /// call from `rank`'s program mid-epoch: the epoch counter and modeled
  /// time it stamps are only mutated at the fence.
  void trace_rank_event(int rank, trace::EventKind kind, double a0,
                        double a1) {
    if (tracer_) {
      tracer_->record(rank, kind, /*peer=*/-1, /*tag=*/-1, a0, a1, epochs_,
                      model_time_);
    }
  }

  /// Bump a per-rank metric slot (inlined no-op when untraced or when the
  /// id is trace::kInvalidMetric).
  void metric_add(trace::MetricId id, int rank, double v) {
    if (tracer_) tracer_->metrics().add(id, rank, v);
  }

 private:
  /// Per-rank free list of payload buffers. The runtime keeps two closed
  /// loops per rank — staging buffers (handed out by stage(), returned at
  /// the fence) and window buffers (filled at the fence, returned by
  /// consume()) — so steady-state message traffic performs no heap
  /// allocation: buffers circulate and converge to the largest payload
  /// size their rank uses.
  class BufferPool {
   public:
    std::vector<double> acquire(std::size_t doubles) {
      if (free_.empty()) return std::vector<double>(doubles);
      std::vector<double> v = std::move(free_.back());
      free_.pop_back();
      if (v.capacity() < doubles) {
        // Grow geometrically, not to the exact request: DS stages
        // variable-size records, and the LIFO rotation keeps pairing
        // requests with buffers a few doubles too small — exact resizing
        // then reallocates on nearly every such pairing, forever
        // (bench/scaling's allocs-per-step curve). Doubling converges
        // every circulating buffer to its rank's peak payload in O(log)
        // reallocations instead.
        v.reserve(std::max(doubles, 2 * v.capacity()));
      }
      v.resize(doubles);
      return v;
    }
    void release(std::vector<double>&& v) {
      if (free_.size() < kMaxPooled) free_.push_back(std::move(v));
    }

   private:
    // Bounds hoarding after bursts; far above any per-epoch buffer count
    // the solvers reach.
    static constexpr std::size_t kMaxPooled = 1024;
    std::vector<std::vector<double>> free_;
  };

  /// A put staged in its source's lane, awaiting the fence.
  struct Staged {
    int dest;
    MsgTag tag;
    std::uint64_t seq;  // per-source send counter (monotonic, never reset)
    std::uint64_t records;  // logical wire records carried (1 unless framed)
    std::vector<double> payload;  // from the source's stage pool
  };
  /// A message held back by the delivery model, keyed for the
  /// deterministic (source, send-order) delivery sort.
  struct Deferred {
    int source;
    MsgTag tag;
    std::uint64_t seq;
    std::uint64_t staged_epoch;   // epoch the put was staged in (staleness
                                  // = delivering epoch - staged_epoch)
    std::uint64_t deliver_epoch;  // earliest fence that may deliver it
    /// Push-order tiebreaker for the maturation sort: duplicated messages
    /// share a (source, seq) key, and their delivery order must not depend
    /// on the sort's tie-breaking. An explicit total order lets the fence
    /// use in-place std::sort (std::stable_sort allocates a temp buffer
    /// every call, which would break the allocation-free steady state).
    std::uint64_t arrival;
    std::vector<double> payload;
  };

  /// Register (or invalidate) the "simmpi.faults_*" metrics depending on
  /// whether both a tracer and a fault schedule are attached. Idempotent;
  /// called from set_tracer and set_fault_schedule so attach order does
  /// not matter.
  void refresh_fault_metrics();

  /// Same pattern for the "simmpi.async_*" metrics: registered only when
  /// both a tracer and an EventDriven policy are attached, so
  /// bulk-synchronous traces carry no async metrics and stay
  /// byte-identical to pre-async builds.
  void refresh_async_metrics();

  /// Same pattern for the "simmpi.node_*" metrics: registered only when
  /// both a tracer and a (non-flat) topology are attached, so
  /// topology-free traces carry no node metrics and stay byte-identical
  /// to pre-node-aware builds.
  void refresh_node_metrics();

  /// The fence's node-aware accounting pre-pass (topology attached only):
  /// walks the staging lanes in (source, send-order) order — the same
  /// deterministic order the delivery merge uses — classifying every put
  /// into physical hops, filling the per-rank tier accumulators, and
  /// recording kHop events / CommStats / metrics. Runs before the model
  /// is charged and consumes nothing: lanes, payloads, and RNG streams
  /// are left exactly as the delivery merge expects them.
  void node_prepass();

  int num_ranks_;
  MachineModel model_;
  DeliveryModel delivery_;
  trace::Tracer* tracer_ = nullptr;
  prof::Profiler* prof_ = nullptr;
  // Runtime-owned metric ids (kInvalidMetric while untraced).
  trace::MetricId m_msgs_sent_ = trace::kInvalidMetric;
  trace::MetricId m_bytes_sent_ = trace::kInvalidMetric;
  trace::MetricId m_flops_ = trace::kInvalidMetric;
  // Logical vs physical message counters (docs/observability.md):
  // "simmpi.msgs_physical" counts puts (== msgs_sent, kept for
  // compatibility); "simmpi.msgs_logical" counts the wire records they
  // carry. They differ only when coalesced frames are in flight.
  trace::MetricId m_msgs_physical_ = trace::kInvalidMetric;
  trace::MetricId m_msgs_logical_ = trace::kInvalidMetric;
  std::array<trace::MetricId, kNumTags> m_msgs_by_tag_{
      trace::kInvalidMetric, trace::kInvalidMetric, trace::kInvalidMetric};
  // Fault-injection counters, registered only when BOTH a tracer and a
  // fault schedule are attached — so fault-free traces carry no fault
  // metrics and stay byte-identical to pre-fault builds.
  trace::MetricId m_faults_dropped_ = trace::kInvalidMetric;
  trace::MetricId m_faults_duplicated_ = trace::kInvalidMetric;
  trace::MetricId m_faults_corrupted_ = trace::kInvalidMetric;
  trace::MetricId m_faults_reordered_ = trace::kInvalidMetric;
  // Registered only when the schedule also configures permanent kills, so
  // message-fault-only traces stay byte-identical to pre-elastic builds.
  trace::MetricId m_faults_killed_ = trace::kInvalidMetric;
  // Asynchronous-delivery counters, registered only when BOTH a tracer
  // and an EventDriven policy are attached (see refresh_async_metrics).
  trace::MetricId m_async_delivered_ = trace::kInvalidMetric;
  trace::MetricId m_async_staleness_sum_ = trace::kInvalidMetric;
  trace::MetricId m_async_staleness_max_ = trace::kInvalidMetric;
  // Node-aware tier counters, registered only when BOTH a tracer and a
  // non-flat topology are attached (see refresh_node_metrics).
  trace::MetricId m_node_msgs_intra_ = trace::kInvalidMetric;
  trace::MetricId m_node_bytes_intra_ = trace::kInvalidMetric;
  trace::MetricId m_node_msgs_inter_ = trace::kInvalidMetric;
  trace::MetricId m_node_bytes_inter_ = trace::kInvalidMetric;
  trace::MetricId m_node_forward_frames_ = trace::kInvalidMetric;
  trace::MetricId m_node_forwarded_records_ = trace::kInvalidMetric;
  const faults::FaultSchedule* faults_ = nullptr;
  // Cached faults_->any_kills() so kill-free fences never touch the
  // schedule's kill table (set_fault_schedule refreshes it).
  bool kills_ = false;
  // Delivery policy (never null; BulkSynchronous by default). `async_`
  // caches kind() == kEventDriven so the fence's hot loop branches on a
  // bool, not a virtual call.
  const DeliveryPolicy* policy_ = &bulk_synchronous_policy();
  bool async_ = false;
  std::uint64_t delivery_state_;  // SplitMix64 state for delay draws
  CommStats stats_;
  // Per-source pending tenant attributions (batched serving): slot
  // [s * num_tenants_ + t] accumulates what source s staged for tenant t
  // since the last fence. Touched only by s's thread mid-epoch; the fence
  // folds and re-zeroes them in ascending source order. Empty unless
  // set_num_tenants configured a batch.
  std::size_t num_tenants_ = 0;
  std::vector<std::uint64_t> tenant_lane_records_, tenant_lane_doubles_;
  std::vector<std::vector<Message>> windows_;   // delivered, per rank
  std::vector<std::vector<Staged>> lanes_;      // pending, per SOURCE rank
  std::vector<std::uint64_t> lane_seq_;         // per-source send counters
  std::vector<std::vector<Deferred>> deferred_;  // delayed, per dest rank
  // Buffer recycling (see BufferPool): stage_pools_[s] feeds stage(s, ...)
  // mid-epoch (touched only by s's thread); window_pools_[d] feeds the
  // fence's delivery copies and is refilled by consume(d). The fence runs
  // single-threaded, so it may touch every pool.
  std::vector<BufferPool> stage_pools_, window_pools_;
  // Fence scratch, hoisted so steady-state fences do not allocate.
  std::vector<std::vector<Deferred>> fence_matured_;  // per dest rank
  std::vector<Deferred> fence_keep_;
  std::uint64_t arrival_counter_ = 0;  // Deferred::arrival source
  // Per-epoch accounting for the machine model.
  std::vector<double> epoch_flops_;
  std::vector<std::uint64_t> epoch_msgs_, epoch_bytes_;
  // Node-aware state. topo_ is the *effective* topology (flat attachments
  // degenerate to nullptr); node_pair_channels_ is the dense node-pair
  // channel-count matrix from NodeRoutingOptions. The group_* vectors are
  // the prepass's dense (src node, dst node, tag) scratch — touched slots
  // are listed in group_touched_ and re-zeroed as the leader->leader
  // charges are emitted, so steady-state fences stay allocation-free. The
  // epoch_*_intra_/inter_ vectors are the per-rank physical-hop tier
  // accumulators rank_cost_tiered charges from.
  const NodeTopology* topo_ = nullptr;
  bool node_route_ = false;
  std::vector<std::uint32_t> node_pair_channels_;
  std::vector<std::uint32_t> group_puts_;
  std::vector<std::uint64_t> group_records_, group_doubles_;
  std::vector<std::size_t> group_touched_;
  std::vector<std::uint64_t> epoch_msgs_intra_, epoch_bytes_intra_;
  std::vector<std::uint64_t> epoch_msgs_inter_, epoch_bytes_inter_;
  std::uint64_t epochs_ = 0;
  double model_time_ = 0.0;
  double last_epoch_seconds_ = 0.0;
};

/// Message byte size as charged to the model: payload plus a fixed header.
constexpr std::uint64_t kMessageHeaderBytes = 16;
inline std::uint64_t message_bytes(std::size_t payload_doubles) {
  return kMessageHeaderBytes + 8 * static_cast<std::uint64_t>(payload_doubles);
}

}  // namespace dsouth::simmpi
