#pragma once

/// \file runtime.hpp
/// Deterministic simulated one-sided message-passing runtime.
///
/// This is the repository's substitute for MPI-3 RMA on a real cluster
/// (DESIGN.md §1). It simulates P ranks executing in *epochs*. Within an
/// epoch a rank may read its window (the messages delivered at the previous
/// fence), do local compute (reported via add_flops), and `put()` data into
/// other ranks' windows. `fence()` closes the epoch: staged puts become
/// visible in the destination windows, the machine model charges the epoch,
/// and per-put statistics accumulate.
///
/// Correspondence with the paper's MPI formulation:
///   MPI_Win_allocate            -> Runtime construction (one window/rank)
///   MPI_Win_post/start          -> implicit epoch open after fence()
///   MPI_Put                     -> put()
///   MPI_Win_complete/wait       -> fence()
/// The paper's algorithms are bulk-synchronous per parallel step (every
/// rank opens and closes the same access epochs), so this superstep
/// semantics is exact, and it makes every experiment bit-reproducible.
///
/// Concurrency contract (the ExecutionBackend discipline, execution.hpp):
/// within an epoch, at most one thread drives a given rank, and every call
/// it makes is indexed by that rank — put(source=rank, ...) appends to the
/// rank's own staging lane, add_flops(rank, ...) bumps the rank's own
/// counter, window(rank)/consume(rank) touch the rank's own window. Ranks
/// therefore never share mutable state mid-epoch and may run on concurrent
/// threads. fence() is called by exactly one thread after the epoch's rank
/// programs have completed (the backend joins them); it merges the staging
/// lanes in (source, send-order) order — identical to the chronological
/// put order of a sequential rank sweep — so delivery order, delivery-delay
/// draws, CommStats, and modeled time are bit-identical whichever backend
/// staged the puts.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "simmpi/machine_model.hpp"
#include "simmpi/stats.hpp"
#include "trace/trace.hpp"

namespace dsouth::simmpi {

/// A delivered message as seen in the destination window.
struct Message {
  int source = -1;
  MsgTag tag = MsgTag::kOther;
  std::vector<double> payload;
};

/// Optional weak-delivery model: each put is, with `delay_probability`,
/// deferred by 1..max_delay_epochs extra fences (deterministic given the
/// seed). Models an asynchronous/congested fabric where one-sided writes
/// land late; note same-source messages may then be *observed out of
/// order* — exactly the staleness regime the paper's deadlock discussion
/// is about. Default: no delays (faithful bulk-synchronous epochs).
struct DeliveryModel {
  double delay_probability = 0.0;
  int max_delay_epochs = 2;
  std::uint64_t seed = 0xDE1A7ULL;
};

class Runtime {
 public:
  explicit Runtime(int num_ranks, MachineModel model = {},
                   DeliveryModel delivery = {});

  int num_ranks() const { return num_ranks_; }
  const MachineModel& model() const { return model_; }

  /// Messages delivered to `rank` and not yet consumed, in fence order
  /// (within a fence: sorted by source rank, ties by send order). Windows
  /// accumulate across fences until consume() — mirroring one-sided RMA,
  /// where written data persists until the target processes it.
  std::span<const Message> window(int rank) const;

  /// Discard `rank`'s window contents (call after processing them).
  void consume(int rank);

  /// One-sided put: stage `payload` for delivery into `dest`'s window at
  /// the next fence. Counts as exactly one message from `source`. Staged
  /// into `source`'s private lane; safe to call concurrently from distinct
  /// sources. Per-message accounting (stats, delivery-delay draws) happens
  /// at the fence, in (source, send-order) order.
  void put(int source, int dest, MsgTag tag, std::span<const double> payload);

  /// Report local computation performed by `rank` in this epoch (flops).
  void add_flops(int rank, double flops);

  /// Close the epoch: deliver staged puts, charge the machine model,
  /// clear per-epoch counters. Single caller at a time (the backend joins
  /// the epoch's rank programs first).
  void fence();

  /// Cumulative modeled time (seconds) over all fenced epochs.
  double model_time_seconds() const { return model_time_; }

  /// Modeled time charged by the most recent fence().
  double last_epoch_seconds() const { return last_epoch_seconds_; }

  std::uint64_t epochs_completed() const { return epochs_; }

  /// Messages currently deferred by the delivery model.
  std::uint64_t delayed_in_flight() const { return delayed_in_flight_; }

  /// Run extra empty fences until every deferred message has landed
  /// (bounded by max_delay_epochs). No-op without a delivery model.
  void drain_delayed();

  const CommStats& stats() const { return stats_; }

  /// Zero the communication counters (e.g. to measure a phase in
  /// isolation). The explicit API replaces the old mutable stats()
  /// accessor — accounting is written only by the runtime itself.
  void reset_stats() { stats_.reset(); }

  /// Attach a structured-event tracer (docs/observability.md). Not owned;
  /// must outlive the runtime (or be detached with nullptr). Registers the
  /// runtime's metrics ("simmpi.msgs_sent" etc.) into the tracer's
  /// registry. Call before the first epoch: registration is not
  /// thread-safe against in-flight rank programs, and attaching mid-run
  /// would start the trace at a nonzero epoch.
  ///
  /// Determinism: the trace stream inherits the fence-merge guarantee —
  /// per-rank event lanes merge at each fence() in (source, record-order)
  /// order, so the stream is bit-identical across execution backends.
  /// With no tracer attached every hook below is an inlined null test and
  /// results are byte-identical to an untraced build.
  void set_tracer(trace::Tracer* tracer);

  /// The attached tracer, or nullptr.
  trace::Tracer* tracer() const { return tracer_; }

  /// Record a solver-level event for `rank` (relax/absorb — see
  /// trace::EventKind). Inlined no-op when no tracer is attached. Safe to
  /// call from `rank`'s program mid-epoch: the epoch counter and modeled
  /// time it stamps are only mutated at the fence.
  void trace_rank_event(int rank, trace::EventKind kind, double a0,
                        double a1) {
    if (tracer_) {
      tracer_->record(rank, kind, /*peer=*/-1, /*tag=*/-1, a0, a1, epochs_,
                      model_time_);
    }
  }

  /// Bump a per-rank metric slot (inlined no-op when untraced or when the
  /// id is trace::kInvalidMetric).
  void metric_add(trace::MetricId id, int rank, double v) {
    if (tracer_) tracer_->metrics().add(id, rank, v);
  }

 private:
  /// A put staged in its source's lane, awaiting the fence.
  struct Staged {
    int dest;
    MsgTag tag;
    std::uint64_t seq;  // per-source send counter (monotonic, never reset)
    std::vector<double> payload;
  };
  /// A message held back by the delivery model, keyed for the
  /// deterministic (source, send-order) delivery sort.
  struct Deferred {
    int source;
    MsgTag tag;
    std::uint64_t seq;
    std::uint64_t deliver_epoch;  // earliest fence that may deliver it
    std::vector<double> payload;
  };

  int num_ranks_;
  MachineModel model_;
  DeliveryModel delivery_;
  trace::Tracer* tracer_ = nullptr;
  // Runtime-owned metric ids (kInvalidMetric while untraced).
  trace::MetricId m_msgs_sent_ = trace::kInvalidMetric;
  trace::MetricId m_bytes_sent_ = trace::kInvalidMetric;
  trace::MetricId m_flops_ = trace::kInvalidMetric;
  std::array<trace::MetricId, kNumTags> m_msgs_by_tag_{
      trace::kInvalidMetric, trace::kInvalidMetric, trace::kInvalidMetric};
  std::uint64_t delivery_state_;  // SplitMix64 state for delay draws
  std::uint64_t delayed_in_flight_ = 0;
  CommStats stats_;
  std::vector<std::vector<Message>> windows_;   // delivered, per rank
  std::vector<std::vector<Staged>> lanes_;      // pending, per SOURCE rank
  std::vector<std::uint64_t> lane_seq_;         // per-source send counters
  std::vector<std::vector<Deferred>> deferred_;  // delayed, per dest rank
  // Per-epoch accounting for the machine model.
  std::vector<double> epoch_flops_;
  std::vector<std::uint64_t> epoch_msgs_, epoch_bytes_;
  std::uint64_t epochs_ = 0;
  double model_time_ = 0.0;
  double last_epoch_seconds_ = 0.0;
};

/// Message byte size as charged to the model: payload plus a fixed header.
constexpr std::uint64_t kMessageHeaderBytes = 16;
inline std::uint64_t message_bytes(std::size_t payload_doubles) {
  return kMessageHeaderBytes + 8 * static_cast<std::uint64_t>(payload_doubles);
}

}  // namespace dsouth::simmpi
