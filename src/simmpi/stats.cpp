#include "simmpi/stats.hpp"

#include "util/error.hpp"

namespace dsouth::simmpi {

CommStats::CommStats(int num_ranks)
    : num_ranks_(num_ranks),
      msgs_per_rank_(static_cast<std::size_t>(num_ranks), 0) {
  DSOUTH_CHECK(num_ranks > 0);
}

void CommStats::record_send(int source, MsgTag tag, std::uint64_t bytes,
                            std::uint64_t logical) {
  DSOUTH_CHECK(source >= 0 && source < num_ranks_);
  const auto t = static_cast<std::size_t>(tag);
  DSOUTH_CHECK(t < kNumTags);
  DSOUTH_CHECK(logical >= 1);
  ++msgs_by_tag_[t];
  logical_by_tag_[t] += logical;
  bytes_by_tag_[t] += bytes;
  ++msgs_per_rank_[static_cast<std::size_t>(source)];
}

void CommStats::bump_fault(int source, std::uint64_t& counter) {
  DSOUTH_CHECK(source >= 0 && source < num_ranks_);
  ++counter;
}

std::uint64_t CommStats::total_messages() const {
  std::uint64_t sum = 0;
  for (auto m : msgs_by_tag_) sum += m;
  return sum;
}

std::uint64_t CommStats::total_messages(MsgTag tag) const {
  return msgs_by_tag_[static_cast<std::size_t>(tag)];
}

std::uint64_t CommStats::logical_messages() const {
  std::uint64_t sum = 0;
  for (auto m : logical_by_tag_) sum += m;
  return sum;
}

std::uint64_t CommStats::logical_messages(MsgTag tag) const {
  return logical_by_tag_[static_cast<std::size_t>(tag)];
}

std::uint64_t CommStats::total_bytes() const {
  std::uint64_t sum = 0;
  for (auto b : bytes_by_tag_) sum += b;
  return sum;
}

std::uint64_t CommStats::messages_from(int rank) const {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  return msgs_per_rank_[static_cast<std::size_t>(rank)];
}

double CommStats::comm_cost() const {
  return static_cast<double>(total_messages()) /
         static_cast<double>(num_ranks_);
}

double CommStats::comm_cost(MsgTag tag) const {
  return static_cast<double>(total_messages(tag)) /
         static_cast<double>(num_ranks_);
}

void CommStats::configure_tenants(std::size_t n) {
  tenant_records_.assign(n, 0);
  tenant_doubles_.assign(n, 0);
}

void CommStats::record_tenant(std::size_t tenant, std::uint64_t records,
                              std::uint64_t doubles) {
  DSOUTH_CHECK(tenant < tenant_records_.size());
  tenant_records_[tenant] += records;
  tenant_doubles_[tenant] += doubles;
}

std::uint64_t CommStats::tenant_records(std::size_t tenant) const {
  DSOUTH_CHECK(tenant < tenant_records_.size());
  return tenant_records_[tenant];
}

std::uint64_t CommStats::tenant_doubles(std::size_t tenant) const {
  DSOUTH_CHECK(tenant < tenant_doubles_.size());
  return tenant_doubles_[tenant];
}

void CommStats::reset() {
  msgs_by_tag_.fill(0);
  logical_by_tag_.fill(0);
  bytes_by_tag_.fill(0);
  msgs_dropped_ = 0;
  msgs_duplicated_ = 0;
  msgs_corrupted_ = 0;
  msgs_async_delivered_ = 0;
  async_staleness_sum_ = 0;
  async_staleness_max_ = 0;
  msgs_intra_ = 0;
  bytes_intra_ = 0;
  msgs_inter_ = 0;
  bytes_inter_ = 0;
  forward_frames_ = 0;
  forwarded_records_ = 0;
  for (auto& m : msgs_per_rank_) m = 0;
  // Tenant slots keep their COUNT (the batch layout) but re-zero their
  // tallies — see configure_tenants.
  for (auto& t : tenant_records_) t = 0;
  for (auto& t : tenant_doubles_) t = 0;
}

}  // namespace dsouth::simmpi
