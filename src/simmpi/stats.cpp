#include "simmpi/stats.hpp"

#include "util/error.hpp"

namespace dsouth::simmpi {

CommStats::CommStats(int num_ranks)
    : num_ranks_(num_ranks),
      msgs_per_rank_(static_cast<std::size_t>(num_ranks), 0) {
  DSOUTH_CHECK(num_ranks > 0);
}

void CommStats::record_send(int source, MsgTag tag, std::uint64_t bytes,
                            std::uint64_t logical) {
  DSOUTH_CHECK(source >= 0 && source < num_ranks_);
  const auto t = static_cast<std::size_t>(tag);
  DSOUTH_CHECK(t < kNumTags);
  DSOUTH_CHECK(logical >= 1);
  ++msgs_by_tag_[t];
  logical_by_tag_[t] += logical;
  bytes_by_tag_[t] += bytes;
  ++msgs_per_rank_[static_cast<std::size_t>(source)];
}

void CommStats::bump_fault(int source, std::uint64_t& counter) {
  DSOUTH_CHECK(source >= 0 && source < num_ranks_);
  ++counter;
}

std::uint64_t CommStats::total_messages() const {
  std::uint64_t sum = 0;
  for (auto m : msgs_by_tag_) sum += m;
  return sum;
}

std::uint64_t CommStats::total_messages(MsgTag tag) const {
  return msgs_by_tag_[static_cast<std::size_t>(tag)];
}

std::uint64_t CommStats::logical_messages() const {
  std::uint64_t sum = 0;
  for (auto m : logical_by_tag_) sum += m;
  return sum;
}

std::uint64_t CommStats::logical_messages(MsgTag tag) const {
  return logical_by_tag_[static_cast<std::size_t>(tag)];
}

std::uint64_t CommStats::total_bytes() const {
  std::uint64_t sum = 0;
  for (auto b : bytes_by_tag_) sum += b;
  return sum;
}

std::uint64_t CommStats::messages_from(int rank) const {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  return msgs_per_rank_[static_cast<std::size_t>(rank)];
}

double CommStats::comm_cost() const {
  return static_cast<double>(total_messages()) /
         static_cast<double>(num_ranks_);
}

double CommStats::comm_cost(MsgTag tag) const {
  return static_cast<double>(total_messages(tag)) /
         static_cast<double>(num_ranks_);
}

void CommStats::configure_tenants(std::size_t n) {
  tenant_records_.assign(n, 0);
  tenant_doubles_.assign(n, 0);
}

void CommStats::record_tenant(std::size_t tenant, std::uint64_t records,
                              std::uint64_t doubles) {
  DSOUTH_CHECK(tenant < tenant_records_.size());
  tenant_records_[tenant] += records;
  tenant_doubles_[tenant] += doubles;
}

std::uint64_t CommStats::tenant_records(std::size_t tenant) const {
  DSOUTH_CHECK(tenant < tenant_records_.size());
  return tenant_records_[tenant];
}

std::uint64_t CommStats::tenant_doubles(std::size_t tenant) const {
  DSOUTH_CHECK(tenant < tenant_doubles_.size());
  return tenant_doubles_[tenant];
}

void CommStats::save(std::vector<std::uint64_t>& out) const {
  out.push_back(static_cast<std::uint64_t>(num_ranks_));
  out.push_back(static_cast<std::uint64_t>(tenant_records_.size()));
  for (auto v : msgs_by_tag_) out.push_back(v);
  for (auto v : logical_by_tag_) out.push_back(v);
  for (auto v : bytes_by_tag_) out.push_back(v);
  out.push_back(msgs_dropped_);
  out.push_back(msgs_duplicated_);
  out.push_back(msgs_corrupted_);
  out.push_back(msgs_dead_dropped_);
  out.push_back(msgs_async_delivered_);
  out.push_back(async_staleness_sum_);
  out.push_back(async_staleness_max_);
  out.push_back(msgs_intra_);
  out.push_back(bytes_intra_);
  out.push_back(msgs_inter_);
  out.push_back(bytes_inter_);
  out.push_back(forward_frames_);
  out.push_back(forwarded_records_);
  for (auto v : msgs_per_rank_) out.push_back(v);
  for (auto v : tenant_records_) out.push_back(v);
  for (auto v : tenant_doubles_) out.push_back(v);
}

void CommStats::load(std::span<const std::uint64_t> in) {
  DSOUTH_CHECK_MSG(in.size() >= 2, "CommStats stream: truncated header");
  DSOUTH_CHECK_MSG(
      in[0] == static_cast<std::uint64_t>(num_ranks_),
      "CommStats stream: rank count mismatch (stream " << in[0] << ", this "
                                                       << num_ranks_ << ")");
  const auto tenants = static_cast<std::size_t>(in[1]);
  DSOUTH_CHECK_MSG(
      in.size() == saved_words(num_ranks_, tenants),
      "CommStats stream: bad length " << in.size() << " for " << num_ranks_
                                      << " ranks, " << tenants << " tenants");
  std::size_t k = 2;
  for (auto& v : msgs_by_tag_) v = in[k++];
  for (auto& v : logical_by_tag_) v = in[k++];
  for (auto& v : bytes_by_tag_) v = in[k++];
  msgs_dropped_ = in[k++];
  msgs_duplicated_ = in[k++];
  msgs_corrupted_ = in[k++];
  msgs_dead_dropped_ = in[k++];
  msgs_async_delivered_ = in[k++];
  async_staleness_sum_ = in[k++];
  async_staleness_max_ = in[k++];
  msgs_intra_ = in[k++];
  bytes_intra_ = in[k++];
  msgs_inter_ = in[k++];
  bytes_inter_ = in[k++];
  forward_frames_ = in[k++];
  forwarded_records_ = in[k++];
  for (auto& v : msgs_per_rank_) v = in[k++];
  tenant_records_.assign(tenants, 0);
  tenant_doubles_.assign(tenants, 0);
  for (auto& v : tenant_records_) v = in[k++];
  for (auto& v : tenant_doubles_) v = in[k++];
}

void CommStats::reset() {
  msgs_by_tag_.fill(0);
  logical_by_tag_.fill(0);
  bytes_by_tag_.fill(0);
  msgs_dropped_ = 0;
  msgs_duplicated_ = 0;
  msgs_corrupted_ = 0;
  msgs_dead_dropped_ = 0;
  msgs_async_delivered_ = 0;
  async_staleness_sum_ = 0;
  async_staleness_max_ = 0;
  msgs_intra_ = 0;
  bytes_intra_ = 0;
  msgs_inter_ = 0;
  bytes_inter_ = 0;
  forward_frames_ = 0;
  forwarded_records_ = 0;
  for (auto& m : msgs_per_rank_) m = 0;
  // Tenant slots keep their COUNT (the batch layout) but re-zero their
  // tallies — see configure_tenants.
  for (auto& t : tenant_records_) t = 0;
  for (auto& t : tenant_doubles_) t = 0;
}

}  // namespace dsouth::simmpi
