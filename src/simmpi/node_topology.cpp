#include "simmpi/node_topology.hpp"

#include "util/error.hpp"

namespace dsouth::simmpi {

NodeTopology NodeTopology::ranks_per_node(int num_ranks, int ranks_per_node) {
  DSOUTH_CHECK(num_ranks >= 1);
  DSOUTH_CHECK_MSG(ranks_per_node >= 1,
                   "ranks_per_node must be >= 1, got " << ranks_per_node);
  std::vector<int> map(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    map[static_cast<std::size_t>(r)] = r / ranks_per_node;
  }
  return explicit_map(std::move(map));
}

NodeTopology NodeTopology::explicit_map(std::vector<int> node_of_rank) {
  DSOUTH_CHECK_MSG(!node_of_rank.empty(), "empty rank -> node map");
  int max_node = -1;
  for (int node : node_of_rank) {
    DSOUTH_CHECK_MSG(node >= 0, "negative node id " << node);
    max_node = node > max_node ? node : max_node;
  }
  NodeTopology t;
  t.node_of_ = std::move(node_of_rank);
  t.leader_of_.assign(static_cast<std::size_t>(max_node) + 1, -1);
  t.ranks_on_.assign(static_cast<std::size_t>(max_node) + 1, {});
  for (int r = 0; r < t.num_ranks(); ++r) {
    const auto node = static_cast<std::size_t>(t.node_of_[
        static_cast<std::size_t>(r)]);
    // Ranks iterate ascending, so the first rank seen on a node is its
    // lowest — the leader — and ranks_on_ lists stay sorted.
    if (t.leader_of_[node] < 0) t.leader_of_[node] = r;
    t.ranks_on_[node].push_back(r);
  }
  t.flat_ = true;
  for (std::size_t node = 0; node < t.ranks_on_.size(); ++node) {
    DSOUTH_CHECK_MSG(!t.ranks_on_[node].empty(),
                     "node ids not dense: node " << node << " has no ranks");
    if (t.ranks_on_[node].size() != 1) t.flat_ = false;
  }
  return t;
}

}  // namespace dsouth::simmpi
