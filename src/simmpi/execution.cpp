#include "simmpi/execution.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsouth::simmpi {

void SequentialBackend::run_epoch(int count,
                                  const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) fn(i);
}

ThreadPoolBackend::ThreadPoolBackend(int num_threads)
    : num_threads_(num_threads > 0
                       ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency())) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 0; t < num_threads_ - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPoolBackend::~ThreadPoolBackend() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPoolBackend::run_indices(const std::function<void(int)>& fn,
                                    int count) {
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) return;
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      fn(i);
    } catch (...) {
      abort_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
      return;
    }
  }
}

void ThreadPoolBackend::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || epoch_id_ != seen; });
    if (stop_) return;
    seen = epoch_id_;
    const std::function<void(int)>* job = job_;
    const int count = job_count_;
    lk.unlock();
    run_indices(*job, count);
    lk.lock();
    if (--unfinished_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPoolBackend::run_epoch(int count,
                                  const std::function<void(int)>& fn) {
  if (count <= 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    unfinished_workers_ = static_cast<int>(workers_.size());
    ++epoch_id_;
  }
  work_cv_.notify_all();
  run_indices(fn, count);  // the calling thread participates
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return unfinished_workers_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSequential:
      return "sequential";
    case BackendKind::kThreadPool:
      return "threads";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) {
  if (name == "sequential" || name == "seq") return BackendKind::kSequential;
  if (name == "threads" || name == "threadpool" || name == "thread") {
    return BackendKind::kThreadPool;
  }
  return std::nullopt;
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               int num_threads) {
  switch (kind) {
    case BackendKind::kSequential:
      return std::make_unique<SequentialBackend>();
    case BackendKind::kThreadPool:
      return std::make_unique<ThreadPoolBackend>(num_threads);
  }
  DSOUTH_CHECK(false);
  return nullptr;
}

}  // namespace dsouth::simmpi
