#pragma once

/// \file stats.hpp
/// Communication accounting for the simulated runtime. The paper's primary
/// communication metric — "communication cost = total number of messages
/// sent by all processes divided by the number of processes" (§4.3) — and
/// the Table 3 breakdown into solve messages vs. explicit-residual messages
/// are computed here from exact per-put counts (not modeled).

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dsouth::simmpi {

/// Message category, set by the sender at each put. Matches the paper's
/// Table 3 breakdown.
enum class MsgTag : int {
  kSolve = 0,     ///< updates sent after relaxing a subdomain
  kResidual = 1,  ///< explicit residual-norm updates
  kOther = 2,
};
inline constexpr int kNumTags = 3;

/// Exact per-put message/byte counters, kept by the Runtime and read by the
/// drivers between epochs. Counts are deterministic (they accumulate at the
/// fence in merge order) and therefore identical across execution backends;
/// the trace layer's "simmpi.msgs_*" counters mirror them independently,
/// which table3's cross-check exploits.
class CommStats {
 public:
  explicit CommStats(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Account one sent (physical) message carrying `logical` wire records
  /// (> 1 only for coalesced frames, see wire/comm_plan.hpp). Called by
  /// the runtime only (at the fence, in deterministic merge order) —
  /// drivers read, never write.
  void record_send(int source, MsgTag tag, std::uint64_t bytes,
                   std::uint64_t logical = 1);

  /// Fault-injection accounting (src/faults, docs/resilience.md), written
  /// by the runtime at the fence like record_send. Dropped/duplicated/
  /// corrupted messages are *also* counted as sent — the sender paid for
  /// the put — so these counters are a breakdown of delivery outcomes,
  /// not a correction to the send totals. All stay 0 when no fault
  /// schedule is attached.
  void record_drop(int source) { bump_fault(source, msgs_dropped_); }
  void record_duplicate(int source) { bump_fault(source, msgs_duplicated_); }
  /// Counts bit-flip corruption and truncation alike.
  void record_corrupt(int source) { bump_fault(source, msgs_corrupted_); }
  /// A message swallowed because its source or destination rank is
  /// permanently dead (faults::RankKill, src/elastic): staged traffic from
  /// a dead rank, in-flight traffic it had outstanding, and traffic
  /// addressed to it. Like the other fault counters it is a breakdown of
  /// delivery outcomes — the message is also counted as sent.
  void record_dead_drop(int source) { bump_fault(source, msgs_dead_dropped_); }

  std::uint64_t dropped_messages() const { return msgs_dropped_; }
  std::uint64_t duplicated_messages() const { return msgs_duplicated_; }
  std::uint64_t corrupted_messages() const { return msgs_corrupted_; }
  std::uint64_t dead_dropped_messages() const { return msgs_dead_dropped_; }

  /// Asynchronous-delivery accounting (simmpi/delivery.hpp), written by
  /// the runtime at the delivering fence when an EventDriven policy is
  /// attached. `staleness` is the number of epochs between staging and
  /// delivery; under BulkSynchronous these counters are never touched and
  /// stay 0, like the fault counters above.
  void record_async_delivery(int dest, std::uint64_t staleness) {
    bump_fault(dest, msgs_async_delivered_);
    async_staleness_sum_ += staleness;
    if (staleness > async_staleness_max_) async_staleness_max_ = staleness;
  }

  std::uint64_t async_delivered() const { return msgs_async_delivered_; }
  std::uint64_t async_staleness_sum() const { return async_staleness_sum_; }
  std::uint64_t async_staleness_max() const { return async_staleness_max_; }

  /// Two-tier physical accounting (simmpi/node_topology.hpp, DESIGN.md
  /// §13), written by the runtime at the fence only when a (non-flat)
  /// NodeTopology is attached — all zero otherwise, like the fault and
  /// async counters. A *hop* is one physical transfer: the message itself
  /// when routed direct, or each leg (source → leader, leader → leader,
  /// leader → destination) when routed through node leaders. These count
  /// physical fabric traffic and are disjoint from the logical per-tag
  /// counters above, which keep their exact legacy meaning.
  void record_hop(bool inter_node, std::uint64_t bytes) {
    if (inter_node) {
      ++msgs_inter_;
      bytes_inter_ += bytes;
    } else {
      ++msgs_intra_;
      bytes_intra_ += bytes;
    }
  }

  /// One leader → leader physical message (an aggregated forward frame,
  /// or a bare record when it carried a single one) holding `records`
  /// logical wire records. Its bytes/msg hop is recorded separately via
  /// record_hop(true, ...).
  void record_forward(std::uint64_t records) {
    ++forward_frames_;
    forwarded_records_ += records;
  }

  std::uint64_t intra_messages() const { return msgs_intra_; }
  std::uint64_t intra_bytes() const { return bytes_intra_; }
  std::uint64_t inter_messages() const { return msgs_inter_; }
  std::uint64_t inter_bytes() const { return bytes_inter_; }
  std::uint64_t forward_frames() const { return forward_frames_; }
  std::uint64_t forwarded_records() const { return forwarded_records_; }

  std::uint64_t total_messages() const;
  std::uint64_t total_messages(MsgTag tag) const;
  /// Wire records carried by the messages counted above. Equal to the
  /// message counts unless coalescing framed several records per put.
  std::uint64_t logical_messages() const;
  std::uint64_t logical_messages(MsgTag tag) const;
  std::uint64_t total_bytes() const;
  /// Messages sent by `rank` since construction / the last reset().
  std::uint64_t messages_from(int rank) const;

  /// Paper metric: total messages / P.
  double comm_cost() const;
  /// Table 3 breakdown: messages of one category / P.
  double comm_cost(MsgTag tag) const;

  /// Per-tenant accounting (batched multi-tenant serving, DESIGN.md §14).
  /// configure_tenants(n) sizes the slots; the slot COUNT survives
  /// reset() — a batched run that resets stats between measurement phases
  /// keeps its tenant layout, only the tallies re-zero. Written by the
  /// runtime at the fence (ascending source order) like every other
  /// counter; all slots stay 0 when no batch is in flight.
  void configure_tenants(std::size_t n);
  std::size_t num_tenants() const { return tenant_records_.size(); }
  void record_tenant(std::size_t tenant, std::uint64_t records,
                     std::uint64_t doubles);
  /// Logical wire records shipped on behalf of one tenant. In a batched
  /// run this matches the logical message count the tenant's solo run
  /// would have produced (tests/test_batch.cpp pins that invariance).
  std::uint64_t tenant_records(std::size_t tenant) const;
  /// Payload doubles shipped on behalf of one tenant (its share of the
  /// shared physical frames, excluding the frame headers).
  std::uint64_t tenant_doubles(std::size_t tenant) const;

  /// Zero every counter (see Runtime::reset_stats).
  void reset();

  /// Append every counter to `out` as a fixed-order u64 stream (the
  /// elastic checkpoint codec, src/elastic/checkpoint.cpp). Structure
  /// (rank count, tenant slot count) travels too, so load() can verify it
  /// decodes into a same-shape instance. A save/load round-trip is exact.
  void save(std::vector<std::uint64_t>& out) const;

  /// Inverse of save(). `in` must be exactly one save() stream written by
  /// a CommStats with the same rank count; the tenant slot count is
  /// adopted from the stream (like configure_tenants). Checked fatal on
  /// shape mismatch.
  void load(std::span<const std::uint64_t> in);

  /// Doubles save() appends for a given shape (codec sizing).
  static std::size_t saved_words(int num_ranks, std::size_t num_tenants) {
    return 24 + static_cast<std::size_t>(num_ranks) + 2 * num_tenants;
  }

 private:
  void bump_fault(int source, std::uint64_t& counter);

  int num_ranks_;
  std::array<std::uint64_t, kNumTags> msgs_by_tag_{};
  std::array<std::uint64_t, kNumTags> logical_by_tag_{};
  std::array<std::uint64_t, kNumTags> bytes_by_tag_{};
  std::uint64_t msgs_dropped_ = 0;
  std::uint64_t msgs_duplicated_ = 0;
  std::uint64_t msgs_corrupted_ = 0;
  std::uint64_t msgs_dead_dropped_ = 0;
  std::uint64_t msgs_async_delivered_ = 0;
  std::uint64_t async_staleness_sum_ = 0;
  std::uint64_t async_staleness_max_ = 0;
  // Per-tier physical hop counters (node-aware runs only).
  std::uint64_t msgs_intra_ = 0;
  std::uint64_t bytes_intra_ = 0;
  std::uint64_t msgs_inter_ = 0;
  std::uint64_t bytes_inter_ = 0;
  std::uint64_t forward_frames_ = 0;
  std::uint64_t forwarded_records_ = 0;
  std::vector<std::uint64_t> msgs_per_rank_;
  // Per-tenant tallies (batched serving only; empty otherwise).
  std::vector<std::uint64_t> tenant_records_, tenant_doubles_;
};

}  // namespace dsouth::simmpi
