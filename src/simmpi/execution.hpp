#pragma once

/// \file execution.hpp
/// Pluggable rank-execution backends.
///
/// An ExecutionBackend answers one question: given the per-rank programs of
/// an epoch (closures over RankContext), on which OS threads do they run?
/// The simulation semantics are entirely in Runtime — every mutation a rank
/// program performs is indexed by its own rank (windows, flop counters,
/// staging lanes), and the fence merges staged effects in a deterministic
/// (source, send-order) order — so the backend choice changes wall-clock
/// time only. Results, CommStats, and modeled time are bit-identical across
/// backends; the determinism test suite enforces this.
///
/// Backends:
///   SequentialBackend — ranks run ascending on the calling thread. The
///     reference; zero overhead, useful under debuggers.
///   ThreadPoolBackend — a persistent std::thread pool; ranks of an epoch
///     are claimed dynamically by the workers (the calling thread
///     participates too). This is what makes large-P sweeps use the
///     machine's cores.
///
/// A future real-MPI or async backend slots in here without touching the
/// solvers (DESIGN.md § Execution backends).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace dsouth::simmpi {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  ExecutionBackend() = default;
  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  virtual const char* name() const = 0;
  virtual int num_threads() const = 0;

  /// Invoke fn(i) exactly once for every i in [0, count) and return when
  /// all invocations have completed. fn must tolerate concurrent calls for
  /// *distinct* indices (the one-thread-per-rank discipline); no two calls
  /// receive the same index. The first exception thrown by fn is rethrown
  /// here after the epoch drains.
  virtual void run_epoch(int count, const std::function<void(int)>& fn) = 0;
};

/// Deterministic single-threaded reference: indices run ascending.
class SequentialBackend final : public ExecutionBackend {
 public:
  const char* name() const override { return "sequential"; }
  int num_threads() const override { return 1; }
  void run_epoch(int count, const std::function<void(int)>& fn) override;
};

/// Persistent worker pool. `num_threads` total threads execute each epoch
/// (num_threads - 1 workers plus the calling thread); 0 means
/// hardware_concurrency.
class ThreadPoolBackend final : public ExecutionBackend {
 public:
  explicit ThreadPoolBackend(int num_threads = 0);
  ~ThreadPoolBackend() override;

  const char* name() const override { return "threads"; }
  int num_threads() const override { return num_threads_; }
  void run_epoch(int count, const std::function<void(int)>& fn) override;

 private:
  void worker_loop();
  void run_indices(const std::function<void(int)>& fn, int count);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_, done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mu_
  int job_count_ = 0;                              // guarded by mu_
  int unfinished_workers_ = 0;                     // guarded by mu_
  std::uint64_t epoch_id_ = 0;                     // guarded by mu_
  bool stop_ = false;                              // guarded by mu_
  std::exception_ptr error_;                       // guarded by mu_
  std::atomic<int> next_{0};
  std::atomic<bool> abort_{false};
};

/// Backend selector for options structs / CLI flags.
enum class BackendKind {
  kSequential,
  kThreadPool,
};

const char* backend_kind_name(BackendKind kind);

/// Parse "sequential"/"seq" or "threads"/"threadpool"; nullopt otherwise.
std::optional<BackendKind> parse_backend_kind(std::string_view name);

/// Factory. `num_threads` only applies to the thread-pool backend
/// (0 = hardware concurrency).
std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               int num_threads = 0);

}  // namespace dsouth::simmpi
