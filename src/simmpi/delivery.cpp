#include "simmpi/delivery.hpp"

#include "util/error.hpp"

namespace dsouth::simmpi {

namespace {

/// SplitMix64 output function — the same avalanche src/faults uses for its
/// stateless draws, duplicated here because the policy layer must not
/// depend on the fault subsystem (it is the other way around: both hang
/// off the runtime).
inline std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash of (seed, salt, epoch, src, dst, seq) — the fault subsystem's key
/// scheme, so latency draws are independent of every fault draw (distinct
/// salt) and of the legacy DeliveryModel stream (no shared state).
inline std::uint64_t draw(std::uint64_t seed, std::uint64_t salt,
                          std::uint64_t epoch, int src, int dst,
                          std::uint64_t seq) {
  std::uint64_t h = mix(seed ^ salt);
  h = mix(h ^ epoch);
  h = mix(h ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst)));
  h = mix(h ^ seq);
  return h;
}

/// Salt for the latency draw; distinct from every kSalt* in fault_plan.cpp.
constexpr std::uint64_t kSaltLatency = 0x1A7EULL;

}  // namespace

const DeliveryPolicy& bulk_synchronous_policy() {
  static const BulkSynchronousPolicy policy;
  return policy;
}

EventDrivenPolicy::EventDrivenPolicy(EventDrivenOptions opt) : opt_(opt) {
  DSOUTH_CHECK(opt.min_latency_epochs >= 0);
  DSOUTH_CHECK_MSG(opt.min_latency_epochs <= opt.max_latency_epochs,
                   "EventDrivenPolicy: min latency " << opt.min_latency_epochs
                                                     << " exceeds max "
                                                     << opt.max_latency_epochs);
}

std::uint64_t EventDrivenPolicy::extra_latency(std::uint64_t epoch, int src,
                                               int dst,
                                               std::uint64_t seq) const {
  const auto lo = static_cast<std::uint64_t>(opt_.min_latency_epochs);
  const auto hi = static_cast<std::uint64_t>(opt_.max_latency_epochs);
  if (lo == hi) return lo;  // degenerate range: no draw needed
  const std::uint64_t h = draw(opt_.seed, kSaltLatency, epoch, src, dst, seq);
  return lo + h % (hi - lo + 1);
}

}  // namespace dsouth::simmpi
