#pragma once

/// \file coloring.hpp
/// Greedy graph coloring. Multicolor Gauss–Seidel (one of the paper's
/// baselines, Fig. 2/5) relaxes all rows of one color per parallel step;
/// the paper colors "using a breadth-first traversal", which is the default
/// order here.

#include <vector>

#include "graph/graph.hpp"

namespace dsouth::graph {

/// Vertex visit order for the greedy coloring.
enum class ColoringOrder {
  kBfs,           ///< breadth-first from a pseudo-peripheral vertex (paper)
  kNatural,       ///< 0, 1, 2, ...
  kLargestFirst,  ///< descending degree (Welsh–Powell)
};

struct Coloring {
  std::vector<index_t> color;  ///< per-vertex color id, dense from 0
  index_t num_colors = 0;

  /// Vertices grouped by color, each group in ascending vertex order.
  std::vector<std::vector<index_t>> groups() const;
};

/// Greedy coloring: visit vertices in the given order, assign the smallest
/// color unused by already-colored neighbors. Disconnected graphs are
/// handled (BFS restarts per component).
Coloring greedy_coloring(const Graph& g,
                         ColoringOrder order = ColoringOrder::kBfs);

/// True iff no edge joins two vertices of the same color and all colors
/// are in [0, num_colors).
bool coloring_is_valid(const Graph& g, const Coloring& c);

}  // namespace dsouth::graph
