#pragma once

/// \file partition.hpp
/// K-way graph partitioning — the library's METIS stand-in (DESIGN.md §1).
/// The distributed experiments partition each matrix's adjacency graph into
/// one subdomain per simulated rank; partition quality (balance, edge cut)
/// controls both load balance and the number of neighbor messages, so the
/// partitioner is a first-class substrate here.
///
/// Method: recursive bisection. Each bisection grows one side by BFS from a
/// pseudo-peripheral vertex until the target weight is reached, then runs a
/// bounded Fiduccia–Mattheyses refinement (gain heap, vertex locking,
/// best-prefix rollback) to reduce the cut while keeping balance.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dsouth::graph {

/// A k-way partition: `part[v]` in [0, num_parts).
struct Partition {
  index_t num_parts = 0;
  std::vector<index_t> part;

  std::vector<index_t> part_sizes() const;
  bool is_valid(index_t num_vertices) const;
};

/// Quality metrics.
struct PartitionQuality {
  index_t edge_cut = 0;      ///< edges with endpoints in different parts
  double imbalance = 0.0;    ///< max part size / ideal part size
  index_t empty_parts = 0;
};

PartitionQuality evaluate_partition(const Graph& g, const Partition& p);

struct PartitionOptions {
  /// FM refinement passes per bisection (0 disables refinement).
  int fm_passes = 2;
  /// A pass aborts after this many consecutive non-improving moves
  /// (bounds FM cost on large subdomains; classic FM would move every
  /// vertex once).
  int fm_negative_streak_limit = 100;
  /// Allowed deviation of each side from its target size, as a fraction
  /// (at least one vertex of slack is always allowed). Kept tight because
  /// per-level drift compounds down the bisection tree: 0.005 yields
  /// final imbalance ≈ 1.25 at 8192 parts on mesh graphs, vs ≈ 1.9 at
  /// 0.03, at ≈ 2% extra edge cut.
  double balance_tolerance = 0.005;
  std::uint64_t seed = 0x5041525449ULL;
};

/// Recursive-bisection k-way partitioning. Requires 1 <= k <= |V|.
/// Deterministic for fixed options.
Partition partition_recursive_bisection(const Graph& g, index_t k,
                                        const PartitionOptions& opt = {});

/// Incremental repartition after permanent part failure (src/elastic,
/// docs/resilience.md). Every vertex of a part in `dead_parts` is adopted
/// by a surviving part — preferring the survivor owning the most adjacent
/// edges, waves of adoption handling enclaves, smallest-survivor fallback
/// for disconnected orphans — then a bounded pairwise FM refinement (the
/// same gain-heap/locking/best-prefix machinery the bisection partitioner
/// uses) polishes the cut around every recipient part. The result keeps
/// `num_parts` unchanged: dead parts simply end up EMPTY (DistLayout
/// permits empty parts), so rank numbering survives the failure.
///
/// Deterministic for fixed inputs, and *incremental*: surviving parts keep
/// their vertices except where FM trades boundary vertices, so the
/// rebuild cost after a failure is proportional to the failed region, not
/// the graph. Requires at least one surviving part.
Partition repartition_after_failure(const Graph& g, const Partition& p,
                                    std::span<const index_t> dead_parts,
                                    const PartitionOptions& opt = {});

/// Simple baseline: k seeds grown breadth-first in round-robin (no
/// refinement). Used in tests as a sanity comparator and in the
/// partitioning example.
Partition partition_greedy_growing(const Graph& g, index_t k,
                                   std::uint64_t seed = 0x47524f57ULL);

/// Trivial contiguous-range partition of [0, n) into k nearly equal blocks
/// (what you get with no partitioner at all; ablation baseline).
Partition partition_contiguous_blocks(index_t n, index_t k);

}  // namespace dsouth::graph
