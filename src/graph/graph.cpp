#include "graph/graph.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace dsouth::graph {

Graph Graph::from_matrix_structure(const sparse::CsrMatrix& a) {
  DSOUTH_CHECK(a.rows() == a.cols());
  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      if (j == i) continue;
      edges.emplace_back(std::min(i, j), std::max(i, j));
    }
  }
  return from_edges(a.rows(), edges);
}

Graph Graph::from_edges(index_t num_vertices,
                        std::span<const std::pair<index_t, index_t>> edges) {
  DSOUTH_CHECK(num_vertices >= 0);
  std::vector<std::pair<index_t, index_t>> e;
  e.reserve(edges.size());
  for (auto [u, v] : edges) {
    DSOUTH_CHECK(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices);
    if (u == v) continue;
    e.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(e.begin(), e.end());
  e.erase(std::unique(e.begin(), e.end()), e.end());

  Graph g;
  g.n_ = num_vertices;
  std::vector<index_t> deg(static_cast<std::size_t>(num_vertices), 0);
  for (auto [u, v] : e) {
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
  }
  g.ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (index_t i = 0; i < num_vertices; ++i) {
    g.ptr_[static_cast<std::size_t>(i) + 1] =
        g.ptr_[static_cast<std::size_t>(i)] + deg[static_cast<std::size_t>(i)];
  }
  g.adj_.resize(static_cast<std::size_t>(g.ptr_.back()));
  std::vector<index_t> cursor(g.ptr_.begin(), g.ptr_.end() - 1);
  for (auto [u, v] : e) {
    g.adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    g.adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  // e is sorted by (u, v): every u-list fills in ascending v, and every
  // v-list fills in ascending u, so neighbor lists come out sorted.
  return g;
}

std::span<const index_t> Graph::neighbors(index_t v) const {
  DSOUTH_ASSERT(v >= 0 && v < n_);
  auto b = static_cast<std::size_t>(ptr_[v]);
  auto e = static_cast<std::size_t>(ptr_[v + 1]);
  return {adj_.data() + b, e - b};
}

index_t Graph::max_degree() const {
  index_t m = 0;
  for (index_t v = 0; v < n_; ++v) m = std::max(m, degree(v));
  return m;
}

std::vector<index_t> Graph::bfs_order(index_t start,
                                      std::span<const char> mask) const {
  DSOUTH_CHECK(start >= 0 && start < n_);
  DSOUTH_CHECK(mask.empty() || mask.size() == static_cast<std::size_t>(n_));
  auto allowed = [&](index_t v) {
    return mask.empty() || mask[static_cast<std::size_t>(v)] != 0;
  };
  DSOUTH_CHECK(allowed(start));
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  std::vector<index_t> order;
  std::deque<index_t> queue;
  queue.push_back(start);
  seen[static_cast<std::size_t>(start)] = 1;
  while (!queue.empty()) {
    index_t v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (index_t w : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(w)] && allowed(w)) {
        seen[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
  }
  return order;
}

index_t Graph::connected_components(std::vector<index_t>& component) const {
  component.assign(static_cast<std::size_t>(n_), -1);
  index_t count = 0;
  for (index_t s = 0; s < n_; ++s) {
    if (component[static_cast<std::size_t>(s)] >= 0) continue;
    std::deque<index_t> queue{s};
    component[static_cast<std::size_t>(s)] = count;
    while (!queue.empty()) {
      index_t v = queue.front();
      queue.pop_front();
      for (index_t w : neighbors(v)) {
        if (component[static_cast<std::size_t>(w)] < 0) {
          component[static_cast<std::size_t>(w)] = count;
          queue.push_back(w);
        }
      }
    }
    ++count;
  }
  return count;
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  std::vector<index_t> comp;
  return connected_components(comp) == 1;
}

index_t Graph::pseudo_peripheral_vertex(index_t hint) const {
  DSOUTH_CHECK(n_ > 0);
  DSOUTH_CHECK(hint >= 0 && hint < n_);
  // Alternating BFS sweeps: move to a min-degree vertex in the last BFS
  // level until the eccentricity stops growing (George–Liu heuristic).
  index_t current = hint;
  index_t last_ecc = -1;
  for (int iter = 0; iter < 8; ++iter) {
    std::vector<index_t> level(static_cast<std::size_t>(n_), -1);
    std::deque<index_t> queue{current};
    level[static_cast<std::size_t>(current)] = 0;
    index_t ecc = 0;
    std::vector<index_t> frontier;
    while (!queue.empty()) {
      index_t v = queue.front();
      queue.pop_front();
      if (level[static_cast<std::size_t>(v)] > ecc) {
        ecc = level[static_cast<std::size_t>(v)];
        frontier.clear();
      }
      if (level[static_cast<std::size_t>(v)] == ecc) frontier.push_back(v);
      for (index_t w : neighbors(v)) {
        if (level[static_cast<std::size_t>(w)] < 0) {
          level[static_cast<std::size_t>(w)] =
              level[static_cast<std::size_t>(v)] + 1;
          queue.push_back(w);
        }
      }
    }
    if (ecc <= last_ecc) break;
    last_ecc = ecc;
    index_t best = frontier.front();
    for (index_t v : frontier) {
      if (degree(v) < degree(best)) best = v;
    }
    current = best;
  }
  return current;
}

}  // namespace dsouth::graph
