#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace dsouth::graph {

std::vector<std::vector<index_t>> Coloring::groups() const {
  std::vector<std::vector<index_t>> out(static_cast<std::size_t>(num_colors));
  for (index_t v = 0; v < static_cast<index_t>(color.size()); ++v) {
    const index_t c = color[static_cast<std::size_t>(v)];
    DSOUTH_CHECK(c >= 0 && c < num_colors);
    out[static_cast<std::size_t>(c)].push_back(v);
  }
  return out;
}

Coloring greedy_coloring(const Graph& g, ColoringOrder order) {
  const index_t n = g.num_vertices();
  std::vector<index_t> visit;
  visit.reserve(static_cast<std::size_t>(n));
  switch (order) {
    case ColoringOrder::kNatural: {
      visit.resize(static_cast<std::size_t>(n));
      std::iota(visit.begin(), visit.end(), index_t{0});
      break;
    }
    case ColoringOrder::kLargestFirst: {
      visit.resize(static_cast<std::size_t>(n));
      std::iota(visit.begin(), visit.end(), index_t{0});
      std::stable_sort(visit.begin(), visit.end(),
                       [&](index_t a, index_t b) {
                         return g.degree(a) > g.degree(b);
                       });
      break;
    }
    case ColoringOrder::kBfs: {
      std::vector<char> todo(static_cast<std::size_t>(n), 1);
      for (index_t s = 0; s < n; ++s) {
        if (!todo[static_cast<std::size_t>(s)]) continue;
        // BFS the whole component containing s (mask excludes only
        // already-visited components, so the traversal is a clean BFS).
        auto component = g.bfs_order(s, todo);
        for (index_t v : component) {
          todo[static_cast<std::size_t>(v)] = 0;
          visit.push_back(v);
        }
      }
      break;
    }
  }
  DSOUTH_CHECK(static_cast<index_t>(visit.size()) == n);

  Coloring result;
  result.color.assign(static_cast<std::size_t>(n), -1);
  std::vector<index_t> forbidden_mark(
      static_cast<std::size_t>(g.max_degree()) + 2, -1);
  for (index_t v : visit) {
    for (index_t w : g.neighbors(v)) {
      const index_t cw = result.color[static_cast<std::size_t>(w)];
      if (cw >= 0 && cw < static_cast<index_t>(forbidden_mark.size())) {
        forbidden_mark[static_cast<std::size_t>(cw)] = v;
      }
    }
    index_t c = 0;
    while (forbidden_mark[static_cast<std::size_t>(c)] == v) ++c;
    result.color[static_cast<std::size_t>(v)] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
  }
  return result;
}

bool coloring_is_valid(const Graph& g, const Coloring& c) {
  if (c.color.size() != static_cast<std::size_t>(g.num_vertices())) {
    return false;
  }
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t cv = c.color[static_cast<std::size_t>(v)];
    if (cv < 0 || cv >= c.num_colors) return false;
    for (index_t w : g.neighbors(v)) {
      if (c.color[static_cast<std::size_t>(w)] == cv) return false;
    }
  }
  return true;
}

}  // namespace dsouth::graph
