#pragma once

/// \file graph.hpp
/// Undirected adjacency graphs derived from sparse-matrix structure.
/// Substrate for multicoloring (Multicolor Gauss–Seidel), partitioning
/// (replaces METIS) and the distributed layout's neighbor discovery.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::graph {

using sparse::index_t;

/// CSR-style undirected graph (self-loops excluded, neighbor lists sorted).
class Graph {
 public:
  Graph() = default;

  /// Adjacency of a square matrix: edge (i, j) iff a_ij or a_ji stored,
  /// i != j. For the (structurally symmetric) matrices in this project the
  /// symmetrization is a no-op but it is applied defensively.
  static Graph from_matrix_structure(const sparse::CsrMatrix& a);

  /// Build from an explicit edge list (u, v pairs; duplicates and
  /// self-loops removed).
  static Graph from_edges(index_t num_vertices,
                          std::span<const std::pair<index_t, index_t>> edges);

  index_t num_vertices() const { return n_; }
  index_t num_edges() const { return static_cast<index_t>(adj_.size()) / 2; }

  std::span<const index_t> neighbors(index_t v) const;
  index_t degree(index_t v) const { return ptr_[v + 1] - ptr_[v]; }
  index_t max_degree() const;

  /// BFS from `start` over vertices with mask[v] != 0 (empty mask = all);
  /// returns visit order.
  std::vector<index_t> bfs_order(index_t start,
                                 std::span<const char> mask = {}) const;

  /// Component id per vertex, ids dense from 0; returns the count.
  index_t connected_components(std::vector<index_t>& component) const;

  bool is_connected() const;

  /// A vertex of minimum degree among those furthest from `hint` — a good
  /// peripheral starting point for RCM and region growing.
  index_t pseudo_peripheral_vertex(index_t hint = 0) const;

 private:
  index_t n_ = 0;
  std::vector<index_t> ptr_;
  std::vector<index_t> adj_;
};

}  // namespace dsouth::graph
