#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "util/error.hpp"
#include "util/indexed_heap.hpp"
#include "util/rng.hpp"

namespace dsouth::graph {

std::vector<index_t> Partition::part_sizes() const {
  std::vector<index_t> sizes(static_cast<std::size_t>(num_parts), 0);
  for (index_t p : part) {
    DSOUTH_CHECK(p >= 0 && p < num_parts);
    ++sizes[static_cast<std::size_t>(p)];
  }
  return sizes;
}

bool Partition::is_valid(index_t num_vertices) const {
  if (static_cast<index_t>(part.size()) != num_vertices) return false;
  for (index_t p : part) {
    if (p < 0 || p >= num_parts) return false;
  }
  return true;
}

PartitionQuality evaluate_partition(const Graph& g, const Partition& p) {
  DSOUTH_CHECK(p.is_valid(g.num_vertices()));
  PartitionQuality q;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    for (index_t w : g.neighbors(v)) {
      if (w > v && p.part[static_cast<std::size_t>(v)] !=
                       p.part[static_cast<std::size_t>(w)]) {
        ++q.edge_cut;
      }
    }
  }
  auto sizes = p.part_sizes();
  index_t max_size = 0;
  for (index_t s : sizes) {
    max_size = std::max(max_size, s);
    if (s == 0) ++q.empty_parts;
  }
  const double ideal = static_cast<double>(g.num_vertices()) /
                       static_cast<double>(p.num_parts);
  q.imbalance = ideal > 0.0 ? static_cast<double>(max_size) / ideal : 0.0;
  return q;
}

namespace {

/// State for one bisection over a vertex subset of the global graph.
/// Local indices index into `verts`.
struct Bisection {
  const Graph& g;
  const std::vector<index_t>& verts;          // subset (global ids)
  std::vector<index_t> local_of;              // global -> local or -1
  std::vector<char> side;                     // local -> 0/1
  index_t size0 = 0;

  Bisection(const Graph& graph, const std::vector<index_t>& subset,
            std::vector<index_t>& scratch_local_of)
      : g(graph), verts(subset), local_of(), side(subset.size(), 1) {
    // scratch_local_of is a persistent n-sized map reused across
    // bisections to avoid O(n) clears; we record touched entries.
    local_of.swap(scratch_local_of);
    for (std::size_t l = 0; l < verts.size(); ++l) {
      local_of[static_cast<std::size_t>(verts[l])] = static_cast<index_t>(l);
    }
  }

  void release(std::vector<index_t>& scratch_local_of) {
    for (index_t v : verts) local_of[static_cast<std::size_t>(v)] = -1;
    scratch_local_of.swap(local_of);
  }

  /// Grow side 0 by BFS from a peripheral-ish vertex until it holds
  /// `target0` vertices.
  void grow_side0(index_t target0, util::Rng& rng) {
    DSOUTH_CHECK(target0 >= 0 &&
                 target0 <= static_cast<index_t>(verts.size()));
    std::vector<char> seen(verts.size(), 0);
    index_t grown = 0;
    std::size_t scan = 0;  // restart cursor for disconnected subsets
    while (grown < target0) {
      // Pick an unseen start: first try a random probe (cheap diversity),
      // then scan.
      index_t start_local = -1;
      for (int probe = 0; probe < 4 && start_local < 0; ++probe) {
        auto cand = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(verts.size())));
        if (!seen[cand]) start_local = static_cast<index_t>(cand);
      }
      while (start_local < 0) {
        DSOUTH_ASSERT(scan < verts.size());
        if (!seen[scan]) start_local = static_cast<index_t>(scan);
        ++scan;
      }
      // Walk to a peripheral vertex of the unseen region (two BFS sweeps).
      start_local = far_vertex(far_vertex(start_local, seen), seen);
      std::deque<index_t> queue{start_local};
      seen[static_cast<std::size_t>(start_local)] = 1;
      while (!queue.empty() && grown < target0) {
        index_t l = queue.front();
        queue.pop_front();
        side[static_cast<std::size_t>(l)] = 0;
        ++grown;
        for (index_t w : g.neighbors(verts[static_cast<std::size_t>(l)])) {
          index_t lw = local_of[static_cast<std::size_t>(w)];
          if (lw >= 0 && !seen[static_cast<std::size_t>(lw)]) {
            seen[static_cast<std::size_t>(lw)] = 1;
            queue.push_back(lw);
          }
        }
      }
    }
    size0 = grown;
  }

  /// Local BFS returning the last vertex reached among unseen vertices.
  index_t far_vertex(index_t start_local, const std::vector<char>& seen) {
    std::vector<char> visited(verts.size(), 0);
    std::deque<index_t> queue{start_local};
    visited[static_cast<std::size_t>(start_local)] = 1;
    index_t last = start_local;
    while (!queue.empty()) {
      index_t l = queue.front();
      queue.pop_front();
      last = l;
      for (index_t w : g.neighbors(verts[static_cast<std::size_t>(l)])) {
        index_t lw = local_of[static_cast<std::size_t>(w)];
        if (lw >= 0 && !visited[static_cast<std::size_t>(lw)] &&
            !seen[static_cast<std::size_t>(lw)]) {
          visited[static_cast<std::size_t>(lw)] = 1;
          queue.push_back(lw);
        }
      }
    }
    return last;
  }

  /// Gain of moving local vertex l to the other side: (cut edges removed)
  /// − (cut edges created), counting only edges inside the subset.
  index_t gain(index_t l) const {
    const char s = side[static_cast<std::size_t>(l)];
    index_t external = 0, internal = 0;
    for (index_t w : g.neighbors(verts[static_cast<std::size_t>(l)])) {
      index_t lw = local_of[static_cast<std::size_t>(w)];
      if (lw < 0) continue;
      if (side[static_cast<std::size_t>(lw)] == s) {
        ++internal;
      } else {
        ++external;
      }
    }
    return external - internal;
  }

  index_t cut() const {
    index_t c = 0;
    for (std::size_t l = 0; l < verts.size(); ++l) {
      for (index_t w : g.neighbors(verts[l])) {
        index_t lw = local_of[static_cast<std::size_t>(w)];
        if (lw >= 0 && static_cast<std::size_t>(lw) > l &&
            side[static_cast<std::size_t>(lw)] != side[l]) {
          ++c;
        }
      }
    }
    return c;
  }

  /// One bounded FM pass. Side-0 size is kept within [min_size0, max_size0]
  /// ∩ [target0 - slack, target0 + slack]. Returns true if the cut improved.
  bool fm_pass(index_t target0, index_t min_size0, index_t max_size0,
               const PartitionOptions& opt) {
    const auto n_local = static_cast<index_t>(verts.size());
    const auto slack = std::max<index_t>(
        1, static_cast<index_t>(std::ceil(opt.balance_tolerance *
                                          static_cast<double>(n_local))));
    const index_t lo = std::max(min_size0, target0 - slack);
    const index_t hi = std::min(max_size0, target0 + slack);
    util::IndexedMaxHeap<index_t> heap(static_cast<std::size_t>(n_local));
    std::vector<char> locked(verts.size(), 0);
    // Seed the heap with boundary vertices only (interior moves always have
    // non-positive gain initially; they enter when a neighbor moves).
    for (index_t l = 0; l < n_local; ++l) {
      bool boundary = false;
      for (index_t w : g.neighbors(verts[static_cast<std::size_t>(l)])) {
        index_t lw = local_of[static_cast<std::size_t>(w)];
        if (lw >= 0 && side[static_cast<std::size_t>(lw)] !=
                           side[static_cast<std::size_t>(l)]) {
          boundary = true;
          break;
        }
      }
      if (boundary) heap.push(static_cast<std::size_t>(l), gain(l));
    }

    const index_t initial_cut = cut();
    index_t current_cut = initial_cut;
    index_t best_cut = initial_cut;
    std::vector<index_t> moves;  // in application order
    std::size_t best_prefix = 0;
    int negative_streak = 0;

    while (!heap.empty() && negative_streak < opt.fm_negative_streak_limit) {
      const auto l = static_cast<index_t>(heap.pop());
      if (locked[static_cast<std::size_t>(l)]) continue;
      // Balance check: moving from side s shrinks side s.
      const char s = side[static_cast<std::size_t>(l)];
      const index_t new_size0 = size0 + (s == 0 ? -1 : +1);
      if (new_size0 < lo || new_size0 > hi) continue;
      const index_t g_l = gain(l);
      // Apply the move.
      side[static_cast<std::size_t>(l)] = static_cast<char>(1 - s);
      size0 = new_size0;
      locked[static_cast<std::size_t>(l)] = 1;
      current_cut -= g_l;
      moves.push_back(l);
      if (current_cut < best_cut) {
        best_cut = current_cut;
        best_prefix = moves.size();
        negative_streak = 0;
      } else {
        ++negative_streak;
      }
      // Update neighbor gains.
      for (index_t w : g.neighbors(verts[static_cast<std::size_t>(l)])) {
        index_t lw = local_of[static_cast<std::size_t>(w)];
        if (lw < 0 || locked[static_cast<std::size_t>(lw)]) continue;
        heap.push_or_update(static_cast<std::size_t>(lw), gain(lw));
      }
    }
    // Roll back to the best prefix.
    for (std::size_t k = moves.size(); k > best_prefix; --k) {
      const index_t l = moves[k - 1];
      const char s = side[static_cast<std::size_t>(l)];
      side[static_cast<std::size_t>(l)] = static_cast<char>(1 - s);
      size0 += (s == 0) ? -1 : +1;
    }
    return best_cut < initial_cut;
  }
};

void bisect_recursive(const Graph& g, const std::vector<index_t>& verts,
                      index_t first_part, index_t k,
                      const PartitionOptions& opt, util::Rng& rng,
                      std::vector<index_t>& scratch_local_of,
                      std::vector<index_t>& out_part) {
  DSOUTH_CHECK(k >= 1);
  if (k == 1) {
    for (index_t v : verts) {
      out_part[static_cast<std::size_t>(v)] = first_part;
    }
    return;
  }
  const index_t k0 = (k + 1) / 2;  // parts on side 0
  const index_t k1 = k - k0;
  const auto n_local = static_cast<index_t>(verts.size());
  DSOUTH_CHECK_MSG(n_local >= k, "cannot split " << n_local << " vertices into "
                                                 << k << " parts");
  // Target proportional to the number of parts on each side.
  const index_t target0 = static_cast<index_t>(
      std::llround(static_cast<double>(n_local) * static_cast<double>(k0) /
                   static_cast<double>(k)));
  const index_t target0_clamped =
      std::clamp<index_t>(target0, k0, n_local - k1);

  Bisection bis(g, verts, scratch_local_of);
  bis.grow_side0(target0_clamped, rng);
  for (int pass = 0; pass < opt.fm_passes; ++pass) {
    if (!bis.fm_pass(target0_clamped, k0, n_local - k1, opt)) break;
  }

  std::vector<index_t> verts0, verts1;
  verts0.reserve(static_cast<std::size_t>(bis.size0));
  verts1.reserve(verts.size() - static_cast<std::size_t>(bis.size0));
  for (std::size_t l = 0; l < verts.size(); ++l) {
    (bis.side[l] == 0 ? verts0 : verts1).push_back(verts[l]);
  }
  bis.release(scratch_local_of);
  // FM may have drifted sizes inside the slack; sides can't be smaller than
  // their part counts though.
  DSOUTH_CHECK(static_cast<index_t>(verts0.size()) >= k0);
  DSOUTH_CHECK(static_cast<index_t>(verts1.size()) >= k1);
  bisect_recursive(g, verts0, first_part, k0, opt, rng, scratch_local_of,
                   out_part);
  bisect_recursive(g, verts1, first_part + k0, k1, opt, rng, scratch_local_of,
                   out_part);
}

}  // namespace

Partition partition_recursive_bisection(const Graph& g, index_t k,
                                        const PartitionOptions& opt) {
  DSOUTH_CHECK(k >= 1 && k <= std::max<index_t>(1, g.num_vertices()));
  Partition p;
  p.num_parts = k;
  p.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  if (k == 1 || g.num_vertices() == 0) return p;
  std::vector<index_t> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), index_t{0});
  std::vector<index_t> scratch(static_cast<std::size_t>(g.num_vertices()), -1);
  util::Rng rng(opt.seed);
  bisect_recursive(g, all, 0, k, opt, rng, scratch, p.part);
  return p;
}

Partition repartition_after_failure(const Graph& g, const Partition& p,
                                    std::span<const index_t> dead_parts,
                                    const PartitionOptions& opt) {
  DSOUTH_CHECK(p.is_valid(g.num_vertices()));
  const index_t k = p.num_parts;
  std::vector<char> dead(static_cast<std::size_t>(k), 0);
  for (index_t d : dead_parts) {
    DSOUTH_CHECK(d >= 0 && d < k);
    dead[static_cast<std::size_t>(d)] = 1;
  }
  index_t num_survivors = 0;
  for (index_t q = 0; q < k; ++q) {
    if (!dead[static_cast<std::size_t>(q)]) ++num_survivors;
  }
  DSOUTH_CHECK_MSG(num_survivors >= 1, "no surviving parts");

  Partition out = p;
  auto sizes = out.part_sizes();
  const auto smallest_survivor = [&]() {
    index_t best = -1;
    for (index_t q = 0; q < k; ++q) {
      if (dead[static_cast<std::size_t>(q)]) continue;
      if (best < 0 || sizes[static_cast<std::size_t>(q)] <
                          sizes[static_cast<std::size_t>(best)]) {
        best = q;
      }
    }
    return best;
  };

  // --- Adoption: hand each dead part's vertex to a surviving neighbor
  // part, in waves so enclaves deep inside a dead region reach a survivor
  // through already-adopted vertices. Ascending vertex order per wave and
  // deterministic tie-breaks (most adjacent edges, then smaller current
  // size, then smaller part id) keep the result reproducible.
  std::vector<index_t> orphans;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    if (dead[static_cast<std::size_t>(out.part[static_cast<std::size_t>(v)])]) {
      orphans.push_back(v);
      out.part[static_cast<std::size_t>(v)] = -1;  // unassigned marker
      --sizes[static_cast<std::size_t>(p.part[static_cast<std::size_t>(v)])];
    }
  }
  std::vector<index_t> edge_count(static_cast<std::size_t>(k), 0);
  std::vector<index_t> next_wave;
  while (!orphans.empty()) {
    next_wave.clear();
    bool progressed = false;
    for (index_t v : orphans) {
      std::fill(edge_count.begin(), edge_count.end(), 0);
      index_t best = -1;
      for (index_t w : g.neighbors(v)) {
        const index_t q = out.part[static_cast<std::size_t>(w)];
        if (q < 0 || dead[static_cast<std::size_t>(q)]) continue;
        const auto uq = static_cast<std::size_t>(q);
        ++edge_count[uq];
        if (best < 0 || edge_count[uq] > edge_count[static_cast<std::size_t>(best)] ||
            (edge_count[uq] == edge_count[static_cast<std::size_t>(best)] &&
             (sizes[uq] < sizes[static_cast<std::size_t>(best)] ||
              (sizes[uq] == sizes[static_cast<std::size_t>(best)] &&
               q < best)))) {
          best = q;
        }
      }
      if (best >= 0) {
        out.part[static_cast<std::size_t>(v)] = best;
        ++sizes[static_cast<std::size_t>(best)];
        progressed = true;
      } else {
        next_wave.push_back(v);
      }
    }
    if (!progressed && !next_wave.empty()) {
      // Fully disconnected orphan: the smallest survivor takes it.
      const index_t v = next_wave.front();
      const index_t q = smallest_survivor();
      out.part[static_cast<std::size_t>(v)] = q;
      ++sizes[static_cast<std::size_t>(q)];
      next_wave.erase(next_wave.begin());
    }
    orphans.swap(next_wave);
  }

  // --- Incremental FM polish: around every recipient part, refine each
  // (recipient, touching-survivor) pair with the bisection partitioner's
  // bounded FM pass. The pair subset is the two parts' vertices; the pass
  // equalizes the pair (target = half) within the usual slack, locking and
  // best-prefix rollback bounding the work to the boundary region.
  std::vector<char> recipient(static_cast<std::size_t>(k), 0);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    if (dead[static_cast<std::size_t>(p.part[static_cast<std::size_t>(v)])]) {
      recipient[static_cast<std::size_t>(
          out.part[static_cast<std::size_t>(v)])] = 1;
    }
  }
  // Touching survivor pairs (a < b) with at least one recipient end, in
  // ascending order.
  std::vector<std::pair<index_t, index_t>> pairs;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t a = out.part[static_cast<std::size_t>(v)];
    for (index_t w : g.neighbors(v)) {
      if (w <= v) continue;
      const index_t b = out.part[static_cast<std::size_t>(w)];
      if (a == b) continue;
      if (!recipient[static_cast<std::size_t>(a)] &&
          !recipient[static_cast<std::size_t>(b)]) {
        continue;
      }
      pairs.emplace_back(std::min(a, b), std::max(a, b));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<index_t> scratch(static_cast<std::size_t>(g.num_vertices()),
                               -1);
  std::vector<index_t> subset;
  for (const auto& [a, b] : pairs) {
    subset.clear();
    for (index_t v = 0; v < g.num_vertices(); ++v) {
      const index_t q = out.part[static_cast<std::size_t>(v)];
      if (q == a || q == b) subset.push_back(v);
    }
    const auto n_local = static_cast<index_t>(subset.size());
    if (n_local < 2) continue;
    Bisection bis(g, subset, scratch);
    index_t size0 = 0;
    for (std::size_t l = 0; l < subset.size(); ++l) {
      if (out.part[static_cast<std::size_t>(subset[l])] == a) {
        bis.side[l] = 0;
        ++size0;
      }
    }
    bis.size0 = size0;
    const index_t target0 = (n_local + 1) / 2;
    for (int pass = 0; pass < opt.fm_passes; ++pass) {
      if (!bis.fm_pass(target0, 1, n_local - 1, opt)) break;
    }
    for (std::size_t l = 0; l < subset.size(); ++l) {
      out.part[static_cast<std::size_t>(subset[l])] =
          bis.side[l] == 0 ? a : b;
    }
    bis.release(scratch);
  }
  return out;
}

Partition partition_greedy_growing(const Graph& g, index_t k,
                                   std::uint64_t seed) {
  DSOUTH_CHECK(k >= 1 && k <= std::max<index_t>(1, g.num_vertices()));
  const index_t n = g.num_vertices();
  Partition p;
  p.num_parts = k;
  p.part.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return p;
  util::Rng rng(seed);
  // Distinct random seeds, one frontier per part, grown round-robin.
  auto seeds = rng.sample_without_replacement(static_cast<std::size_t>(n),
                                              static_cast<std::size_t>(k));
  std::vector<std::deque<index_t>> frontier(static_cast<std::size_t>(k));
  index_t assigned = 0;
  for (index_t part = 0; part < k; ++part) {
    const auto v = static_cast<index_t>(seeds[static_cast<std::size_t>(part)]);
    p.part[static_cast<std::size_t>(v)] = part;
    frontier[static_cast<std::size_t>(part)].push_back(v);
    ++assigned;
  }
  std::size_t scan = 0;
  while (assigned < n) {
    bool progressed = false;
    for (index_t part = 0; part < k && assigned < n; ++part) {
      auto& q = frontier[static_cast<std::size_t>(part)];
      while (!q.empty()) {
        index_t v = q.front();
        bool claimed = false;
        for (index_t w : g.neighbors(v)) {
          if (p.part[static_cast<std::size_t>(w)] < 0) {
            p.part[static_cast<std::size_t>(w)] = part;
            q.push_back(w);
            ++assigned;
            claimed = true;
            progressed = true;
            break;
          }
        }
        if (claimed) break;
        q.pop_front();
      }
    }
    if (!progressed) {
      // Disconnected remainder: hand the next orphan to the smallest part.
      while (scan < static_cast<std::size_t>(n) && p.part[scan] >= 0) ++scan;
      DSOUTH_ASSERT(scan < static_cast<std::size_t>(n));
      auto sizes = std::vector<index_t>(static_cast<std::size_t>(k), 0);
      for (index_t q2 : p.part) {
        if (q2 >= 0) ++sizes[static_cast<std::size_t>(q2)];
      }
      index_t smallest = 0;
      for (index_t part = 1; part < k; ++part) {
        if (sizes[static_cast<std::size_t>(part)] <
            sizes[static_cast<std::size_t>(smallest)]) {
          smallest = part;
        }
      }
      p.part[scan] = smallest;
      frontier[static_cast<std::size_t>(smallest)].push_back(
          static_cast<index_t>(scan));
      ++assigned;
    }
  }
  return p;
}

Partition partition_contiguous_blocks(index_t n, index_t k) {
  DSOUTH_CHECK(n >= 0 && k >= 1);
  Partition p;
  p.num_parts = k;
  p.part.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    // Block b owns rows [b*n/k, (b+1)*n/k).
    p.part[static_cast<std::size_t>(i)] =
        std::min<index_t>(k - 1, (i * k) / std::max<index_t>(1, n));
  }
  return p;
}

}  // namespace dsouth::graph
