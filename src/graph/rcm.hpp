#pragma once

/// \file rcm.hpp
/// Reverse Cuthill–McKee ordering. Not used by the paper's algorithms
/// directly, but a standard tool for bandwidth-reducing row orderings;
/// the examples use it to show how subdomain locality affects the
/// partitioner and the Southwell selection pattern.

#include <vector>

#include "graph/graph.hpp"

namespace dsouth::graph {

/// RCM permutation: `perm[k]` is the original vertex placed at position k.
/// Components are ordered one after another, each started from a
/// pseudo-peripheral vertex.
std::vector<index_t> rcm_order(const Graph& g);

/// Inverse of a permutation.
std::vector<index_t> invert_permutation(const std::vector<index_t>& perm);

/// Symmetric permutation of a square matrix: B = P A Pᵀ with
/// b[new_i][new_j] = a[perm[new_i]][perm[new_j]].
sparse::CsrMatrix permute_symmetric(const sparse::CsrMatrix& a,
                                    const std::vector<index_t>& perm);

/// Matrix bandwidth: max |i - j| over stored entries.
index_t bandwidth(const sparse::CsrMatrix& a);

}  // namespace dsouth::graph
