#include "graph/rcm.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace dsouth::graph {

std::vector<index_t> rcm_order(const Graph& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (index_t s = 0; s < n; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    // Restrict the peripheral search to this component by starting from s;
    // pseudo_peripheral_vertex only walks the component of its hint.
    index_t start = g.pseudo_peripheral_vertex(s);
    std::deque<index_t> queue{start};
    seen[static_cast<std::size_t>(start)] = 1;
    std::size_t component_begin = order.size();
    while (!queue.empty()) {
      index_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      // Enqueue unseen neighbors by ascending degree (Cuthill–McKee rule).
      std::vector<index_t> next;
      for (index_t w : g.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          next.push_back(w);
        }
      }
      std::stable_sort(next.begin(), next.end(), [&](index_t a, index_t b) {
        return g.degree(a) < g.degree(b);
      });
      for (index_t w : next) queue.push_back(w);
    }
    // Reverse within the component (the "R" in RCM).
    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(component_begin),
                 order.end());
  }
  DSOUTH_CHECK(static_cast<index_t>(order.size()) == n);
  return order;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size(), -1);
  for (std::size_t k = 0; k < perm.size(); ++k) {
    const index_t v = perm[k];
    DSOUTH_CHECK(v >= 0 && v < static_cast<index_t>(perm.size()));
    DSOUTH_CHECK_MSG(inv[static_cast<std::size_t>(v)] < 0,
                     "not a permutation: duplicate value " << v);
    inv[static_cast<std::size_t>(v)] = static_cast<index_t>(k);
  }
  return inv;
}

sparse::CsrMatrix permute_symmetric(const sparse::CsrMatrix& a,
                                    const std::vector<index_t>& perm) {
  DSOUTH_CHECK(a.rows() == a.cols());
  DSOUTH_CHECK(perm.size() == static_cast<std::size_t>(a.rows()));
  std::vector<index_t> inv = invert_permutation(perm);
  // col_map[j] = new index of old column j.
  return a.extract(perm, inv, a.cols());
}

index_t bandwidth(const sparse::CsrMatrix& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      bw = std::max(bw, std::abs(i - j));
    }
  }
  return bw;
}

}  // namespace dsouth::graph
