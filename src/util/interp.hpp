#pragma once

/// \file interp.hpp
/// Target-crossing extraction used by the evaluation harness.
///
/// Table 2 of the paper reports the cost of reducing ‖r‖₂ to 0.1 and says:
/// "Linear interpolation on log10(‖r‖₂) was used to extract this data."
/// Given a per-parallel-step residual history and any per-step cumulative
/// cost series (model time, communication cost, relaxations, steps), these
/// helpers find the fractional step at which the residual first crosses the
/// target and interpolate the cost series at that fractional step.

#include <optional>
#include <vector>

namespace dsouth::util {

/// Fractional index s (0 <= s <= residuals.size()-1) where the residual
/// history first reaches `target`, interpolating linearly in
/// log10(residual) between samples. residuals[k] is the value after k
/// steps. Returns nullopt if the target is never reached (the paper's †).
/// Non-monotone histories are handled: the first downward crossing wins.
std::optional<double> first_crossing_log10(const std::vector<double>& residuals,
                                           double target);

/// Value of a piecewise-linear series at fractional index s, where
/// series[k] is the cumulative value after k steps.
double interpolate_series(const std::vector<double>& series, double s);

}  // namespace dsouth::util
