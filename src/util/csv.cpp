#include "util/csv.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace dsouth::util {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : path_(path), out_(path), arity_(headers.size()) {
  DSOUTH_CHECK_MSG(out_.good(), "cannot open CSV file '" << path << "'");
  DSOUTH_CHECK(arity_ > 0);
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(headers[i]);
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() = default;

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  DSOUTH_CHECK_MSG(cells.size() == arity_,
                   "CSV row arity " << cells.size() << ", want " << arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << std::setprecision(17) << v;
    cells.push_back(os.str());
  }
  write_row(cells);
}

}  // namespace dsouth::util
