#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dsouth::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  DSOUTH_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box–Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  DSOUTH_CHECK(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

void Rng::fill_uniform(std::span<double> values, double lo, double hi) {
  for (auto& v : values) v = uniform(lo, hi);
}

}  // namespace dsouth::util
