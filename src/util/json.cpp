#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace dsouth::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Shortest %g form that round-trips the double exactly; 17 significant
  // digits always do.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

std::string json_number(double v) {
  std::string out;
  append_json_number(out, v);
  return out;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  DSOUTH_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  DSOUTH_CHECK_MSG(is_number(), "JSON value is not a number");
  return num_;
}

std::int64_t JsonValue::as_int() const {
  const double v = as_number();
  const auto i = static_cast<std::int64_t>(v);
  DSOUTH_CHECK_MSG(static_cast<double>(i) == v,
                   "JSON number " << v << " is not an integer");
  return i;
}

const std::string& JsonValue::as_string() const {
  DSOUTH_CHECK_MSG(is_string(), "JSON value is not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  DSOUTH_CHECK_MSG(is_array(), "JSON value is not an array");
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  DSOUTH_CHECK_MSG(is_object(), "JSON value is not an object");
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  // Last occurrence wins (duplicate keys keep the last value, RFC 8259 §4).
  const JsonValue* hit = nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) hit = &v;
  }
  return hit;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  DSOUTH_CHECK_MSG(v != nullptr, "JSON object has no member '" << key << "'");
  return *v;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  if (!std::isfinite(d)) return v;  // emitted as null, so parsed as null
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(members);
  return v;
}

std::string JsonValue::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      append_json_number(out, num_);
      break;
    case Kind::kString:
      out = json_quote(str_);
      break;
    case Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      break;
    case Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        out += json_quote(obj_[i].first);
        out += ':';
        out += obj_[i].second.dump();
      }
      out += '}';
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t pos) : text_(text), pos_(pos) {}

  std::size_t pos() const { return pos_; }

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    return v;
  }

  JsonValue parse_value() {
    DSOUTH_CHECK_MSG(pos_ < text_.size(), "JSON: unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue::make_bool(true);
      case 'f':
        expect_literal("false");
        return JsonValue::make_bool(false);
      case 'n':
        expect_literal("null");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    DSOUTH_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                     "JSON: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  void expect_literal(std::string_view lit) {
    DSOUTH_CHECK_MSG(text_.substr(pos_, lit.size()) == lit,
                     "JSON: bad literal at offset " << pos_);
    pos_ += lit.size();
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      DSOUTH_CHECK_MSG(pos_ < text_.size(), "JSON: unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      DSOUTH_CHECK_MSG(pos_ < text_.size(), "JSON: unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  /// Append a Unicode code point as UTF-8.
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    DSOUTH_CHECK_MSG(pos_ + 4 <= text_.size(), "JSON: truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        DSOUTH_CHECK_MSG(false, "JSON: bad \\u escape digit '" << c << "'");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      DSOUTH_CHECK_MSG(pos_ < text_.size(), "JSON: unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c != '\\') {
        DSOUTH_CHECK_MSG(c >= 0x20,
                         "JSON: raw control character in string");
        out += static_cast<char>(c);
        continue;
      }
      DSOUTH_CHECK_MSG(pos_ < text_.size(), "JSON: dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            DSOUTH_CHECK_MSG(pos_ + 1 < text_.size() &&
                                 text_[pos_] == '\\' && text_[pos_ + 1] == 'u',
                             "JSON: unpaired high surrogate");
            pos_ += 2;
            const std::uint32_t lo = parse_hex4();
            DSOUTH_CHECK_MSG(lo >= 0xDC00 && lo <= 0xDFFF,
                             "JSON: invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            DSOUTH_CHECK_MSG(!(cp >= 0xDC00 && cp <= 0xDFFF),
                             "JSON: unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          DSOUTH_CHECK_MSG(false, "JSON: bad escape '\\" << e << "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    DSOUTH_CHECK_MSG(digits() > 0,
                     "JSON: malformed number at offset " << start);
    // RFC 8259: the integer part is "0" or starts with a nonzero digit.
    DSOUTH_CHECK_MSG(text_[int_start] != '0' || pos_ - int_start == 1,
                     "JSON: leading zero in number at offset " << start);
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      DSOUTH_CHECK_MSG(digits() > 0, "JSON: digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      DSOUTH_CHECK_MSG(digits() > 0, "JSON: digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  Parser p(text, 0);
  JsonValue v = p.parse_document();
  DSOUTH_CHECK_MSG(p.pos() == text.size(),
                   "JSON: trailing garbage at offset " << p.pos());
  return v;
}

JsonValue parse_json_prefix(std::string_view text, std::size_t& pos) {
  Parser p(text, pos);
  JsonValue v = p.parse_document();
  pos = p.pos();
  return v;
}

}  // namespace dsouth::util
