#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dsouth::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Shortest %g form that round-trips the double exactly; 17 significant
  // digits always do.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

std::string json_number(double v) {
  std::string out;
  append_json_number(out, v);
  return out;
}

}  // namespace dsouth::util
