#include "util/ascii_plot.hpp"
#include <cstring>

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace dsouth::util {

namespace {

constexpr const char* kMarkers = "*o+x#@%&";

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

std::string short_number(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::abs(v) < 1e-3 || std::abs(v) >= 1e4)) {
    os.setf(std::ios::scientific);
    os << std::setprecision(1) << v;
  } else {
    os << std::setprecision(4) << v;
  }
  return os.str();
}

}  // namespace

std::vector<double> log_ticks(double lo, double hi, int max_ticks) {
  DSOUTH_CHECK_MSG(
      std::isfinite(lo) && std::isfinite(hi) && lo > 0.0 && hi > 0.0,
      "log-axis tick bounds must be positive and finite (got " << lo << ", "
                                                               << hi << ")");
  DSOUTH_CHECK(max_ticks >= 2);
  if (lo > hi) std::swap(lo, hi);
  // Decades fully inside [lo, hi]; the epsilon absorbs log10 rounding so
  // exact powers of ten at the bounds count as covered.
  const int dlo = static_cast<int>(std::ceil(std::log10(lo) - 1e-9));
  const int dhi = static_cast<int>(std::floor(std::log10(hi) + 1e-9));
  if (dhi < dlo) return {};
  int stride = 1;
  while ((dhi - dlo) / stride + 1 > max_ticks) ++stride;
  std::vector<double> ticks;
  for (int d = dhi; d >= dlo; d -= stride) ticks.push_back(std::pow(10.0, d));
  return ticks;
}

void render_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                 const PlotOptions& opt) {
  DSOUTH_CHECK(opt.width >= 10 && opt.height >= 4);
  DSOUTH_CHECK(!series.empty());

  // Collect plottable points in transformed coordinates.
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    DSOUTH_CHECK_MSG(s.x.size() == s.y.size(),
                     "series '" << s.name << "' has mismatched x/y sizes");
    for (std::size_t k = 0; k < s.x.size(); ++k) {
      if ((opt.log_x && s.x[k] <= 0.0) || (opt.log_y && s.y[k] <= 0.0)) {
        continue;
      }
      const double tx = transform(s.x[k], opt.log_x);
      const double ty = transform(s.y[k], opt.log_y);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
      any = true;
    }
  }
  DSOUTH_CHECK_MSG(any, "nothing plottable (log axis with no positive data?)");
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> raster(
      static_cast<std::size_t>(opt.height),
      std::string(static_cast<std::size_t>(opt.width), ' '));
  auto to_col = [&](double tx) {
    const double f = (tx - xmin) / (xmax - xmin);
    return std::clamp<int>(static_cast<int>(std::lround(
                               f * (opt.width - 1))),
                           0, opt.width - 1);
  };
  auto to_row = [&](double ty) {
    const double f = (ty - ymin) / (ymax - ymin);
    // Row 0 is the top of the raster.
    return std::clamp<int>(static_cast<int>(std::lround(
                               (1.0 - f) * (opt.height - 1))),
                           0, opt.height - 1);
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % std::strlen(kMarkers)];
    const auto& s = series[si];
    int prev_col = -1, prev_row = -1;
    for (std::size_t k = 0; k < s.x.size(); ++k) {
      if ((opt.log_x && s.x[k] <= 0.0) || (opt.log_y && s.y[k] <= 0.0)) {
        prev_col = -1;
        continue;
      }
      const int col = to_col(transform(s.x[k], opt.log_x));
      const int row = to_row(transform(s.y[k], opt.log_y));
      // Connect to the previous point with a sparse trace so curves read
      // as lines even when samples are far apart on screen.
      if (prev_col >= 0 && std::abs(col - prev_col) > 1) {
        const int steps = std::abs(col - prev_col);
        for (int t = 1; t < steps; ++t) {
          const int cc = prev_col + (col - prev_col) * t / steps;
          const int rr = prev_row + (row - prev_row) * t / steps;
          auto& cell = raster[static_cast<std::size_t>(rr)]
                             [static_cast<std::size_t>(cc)];
          if (cell == ' ') cell = '.';
        }
      }
      raster[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          mark;
      prev_col = col;
      prev_row = row;
    }
  }

  // Emit: y-axis labels on the first/last rows — plus, on a log y-axis,
  // decade tick labels on the interior rows they map to — then the x range
  // line.
  const std::string y_top =
      short_number(opt.log_y ? std::pow(10.0, ymax) : ymax);
  const std::string y_bot =
      short_number(opt.log_y ? std::pow(10.0, ymin) : ymin);
  std::vector<std::string> row_label(static_cast<std::size_t>(opt.height));
  row_label.front() = y_top;
  row_label.back() = y_bot;
  if (opt.log_y) {
    const int max_ticks = std::max(2, opt.height / 3);
    for (double tick :
         log_ticks(std::pow(10.0, ymin), std::pow(10.0, ymax), max_ticks)) {
      const auto r = static_cast<std::size_t>(to_row(std::log10(tick)));
      if (row_label[r].empty()) row_label[r] = short_number(tick);
    }
  }
  std::size_t label_w = 0;
  for (const auto& l : row_label) label_w = std::max(label_w, l.size());
  for (int r = 0; r < opt.height; ++r) {
    const std::string& l = row_label[static_cast<std::size_t>(r)];
    os << l << std::string(label_w - l.size(), ' ') << " |"
       << raster[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(label_w, ' ') << " +"
     << std::string(static_cast<std::size_t>(opt.width), '-') << "\n";
  const std::string x_lo =
      short_number(opt.log_x ? std::pow(10.0, xmin) : xmin);
  const std::string x_hi =
      short_number(opt.log_x ? std::pow(10.0, xmax) : xmax);
  std::string x_line(label_w + 2, ' ');
  x_line += x_lo;
  const std::size_t pad = label_w + 2 + static_cast<std::size_t>(opt.width);
  if (x_line.size() + x_hi.size() < pad) {
    x_line += std::string(pad - x_line.size() - x_hi.size(), ' ');
  }
  x_line += x_hi;
  os << x_line;
  if (!opt.x_label.empty()) os << "   (" << opt.x_label << ")";
  os << "\n";
  os << std::string(label_w, ' ') << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << " " << kMarkers[si % std::strlen(kMarkers)] << "="
       << series[si].name;
  }
  if (!opt.y_label.empty()) os << "   [y: " << opt.y_label << "]";
  os << "\n";
}

}  // namespace dsouth::util
