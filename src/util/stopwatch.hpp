#pragma once

/// \file stopwatch.hpp
/// Real wall-clock timing (for the micro-kernel google-benchmark harness and
/// for reporting actual simulation run times). The *modeled* distributed
/// wall-clock time lives in simmpi/machine_model.hpp — don't confuse the two.

#include <chrono>

namespace dsouth::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dsouth::util
