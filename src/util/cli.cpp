#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>

#include "util/error.hpp"

namespace dsouth::util {

namespace {
bool is_option(const std::string& tok) {
  // An option starts with '-' and is not a bare negative number.
  if (tok.size() < 2 || tok[0] != '-') return false;
  return !(std::isdigit(static_cast<unsigned char>(tok[1])) || tok[1] == '.');
}
}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  DSOUTH_CHECK(argc >= 1);
  program_ = argv[0];
  int i = 1;
  while (i < argc) {
    std::string tok = argv[i];
    DSOUTH_CHECK_MSG(is_option(tok), "expected -option, got '" << tok << "'");
    std::string name = tok.substr(1);
    if (i + 1 < argc && !is_option(argv[i + 1])) {
      values_[name] = argv[i + 1];
      i += 2;
    } else {
      values_[name] = "";  // flag
      i += 1;
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& dflt) const {
  auto v = get(name);
  return v ? *v : dflt;
}

std::int64_t ArgParser::get_int_or(const std::string& name,
                                   std::int64_t dflt) const {
  auto v = get(name);
  if (!v) return dflt;
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  DSOUTH_CHECK_MSG(ec == std::errc{} && ptr == v->data() + v->size(),
                   "argument -" << name << " expects an integer, got '" << *v
                                << "'");
  return out;
}

double ArgParser::get_double_or(const std::string& name, double dflt) const {
  auto v = get(name);
  if (!v) return dflt;
  char* end = nullptr;
  double out = std::strtod(v->c_str(), &end);
  DSOUTH_CHECK_MSG(end == v->c_str() + v->size(),
                   "argument -" << name << " expects a number, got '" << *v
                                << "'");
  return out;
}

std::vector<std::int64_t> ArgParser::get_int_list_or(
    const std::string& name, const std::vector<std::int64_t>& dflt) const {
  auto v = get(name);
  if (!v) return dflt;
  std::vector<std::int64_t> out;
  std::size_t start = 0;
  while (start <= v->size()) {
    std::size_t comma = v->find(',', start);
    if (comma == std::string::npos) comma = v->size();
    std::string item = v->substr(start, comma - start);
    std::int64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(item.data(), item.data() + item.size(), value);
    DSOUTH_CHECK_MSG(ec == std::errc{} && ptr == item.data() + item.size(),
                     "argument -" << name << ": bad list item '" << item
                                  << "'");
    out.push_back(value);
    start = comma + 1;
  }
  return out;
}

std::string ArgParser::get_choice_or(const std::string& name,
                                     const std::vector<std::string>& choices,
                                     const std::string& dflt) const {
  auto v = get(name);
  if (!v) return dflt;
  for (const auto& c : choices) {
    if (*v == c) return *v;
  }
  std::string allowed;
  for (const auto& c : choices) {
    if (!allowed.empty()) allowed += "|";
    allowed += c;
  }
  DSOUTH_CHECK_MSG(false, "argument -" << name << " expects one of "
                                       << allowed << ", got '" << *v << "'");
  return dflt;
}

std::vector<std::string> ArgParser::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace dsouth::util
