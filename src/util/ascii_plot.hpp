#pragma once

/// \file ascii_plot.hpp
/// Terminal line plots for the figure-reproduction benches: the paper's
/// figures are log-scale convergence curves, and a quick raster in the
/// console makes shape comparisons immediate without leaving the terminal
/// (full-resolution series still go to CSV).

#include <ostream>
#include <string>
#include <vector>

namespace dsouth::util {

struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;  ///< same length as x
};

struct PlotOptions {
  int width = 70;    ///< plot body columns
  int height = 20;   ///< plot body rows
  bool log_x = false;
  bool log_y = true;
  std::string x_label;
  std::string y_label;
};

/// Render the series into a character raster with axes, tick labels on the
/// corners (plus interior decade ticks on a log y-axis — see log_ticks),
/// and a marker legend. Series markers cycle through
/// "*o+x#@%&". Points with non-positive coordinates on a log axis are
/// skipped. Throws CheckError on malformed input (mismatched x/y sizes,
/// nonpositive dimensions, nothing plottable).
void render_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                 const PlotOptions& opt = {});

/// Decade tick values for a log-scale axis spanning [lo, hi]: exact powers
/// of ten within the range, thinned to an integer decade stride so at most
/// `max_ticks` remain, descending from the largest covered decade. Both
/// bounds must be positive and finite (a log axis cannot place zero or
/// negative values — callers skip such points; this throws CheckError).
/// May be empty when no power of ten lies inside the range: the plot then
/// falls back to its corner labels alone.
std::vector<double> log_ticks(double lo, double hi, int max_ticks);

}  // namespace dsouth::util
