#pragma once

/// \file csv.hpp
/// CSV emission for post-processing (the paper artifact's `-format_out`
/// option wrote machine-readable files; each bench binary can dump its
/// series as CSV next to the human-readable table).

#include <fstream>
#include <string>
#include <vector>

namespace dsouth::util {

/// Streaming CSV writer with RFC-4180 quoting. Throws CheckError if the
/// file cannot be opened or a row has the wrong arity.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> headers);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: all-numeric row, formatted with max precision.
  void write_row(const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }
  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace dsouth::util
