#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace dsouth::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DSOUTH_CHECK(!headers_.empty());
}

Table& Table::row() {
  DSOUTH_CHECK_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
                   "previous row has " << rows_.back().size() << " cells, want "
                                       << headers_.size());
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  DSOUTH_CHECK(!rows_.empty());
  DSOUTH_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell_int(long long value) { return cell(std::to_string(value)); }

Table& Table::dagger() { return cell(std::string("†")); }

void Table::print(std::ostream& os) const {
  DSOUTH_CHECK_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
                   "last row incomplete");
  // Display width: '†' is 3 bytes of UTF-8 but 1 column.
  auto width_of = [](const std::string& s) {
    std::size_t w = 0;
    for (unsigned char c : s) {
      if ((c & 0xC0) != 0x80) ++w;  // count non-continuation bytes
    }
    return w;
  };
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = width_of(headers_[c]);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], width_of(row[c]));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::size_t pad = widths[c] - width_of(cells[c]);
      if (c) os << "  ";
      // Right-align everything but the first (label) column.
      if (c == 0) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace dsouth::util
