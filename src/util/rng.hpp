#pragma once

/// \file rng.hpp
/// Deterministic random number generation for the dsouth library.
///
/// The paper's artifact used MKL random number generators to produce initial
/// guesses and right-hand sides. This repository has no MKL, and — more
/// importantly — needs bit-reproducible experiments, so all randomness comes
/// from this self-contained xoshiro256** generator seeded via SplitMix64.
/// Every experiment in bench/ documents the seed it uses.

#include <cstdint>
#include <span>
#include <vector>

namespace dsouth::util {

/// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
/// (Public-domain algorithm by Sebastiano Vigna.)
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (public domain, Blackman &
/// Vigna). Deterministic across platforms; satisfies the C++ named
/// requirement UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8f2d1a4be37c9d51ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Fill with uniform values in [lo, hi).
  void fill_uniform(std::span<double> values, double lo, double hi);

 private:
  std::uint64_t s_[4];
};

}  // namespace dsouth::util
