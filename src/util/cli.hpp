#pragma once

/// \file cli.hpp
/// Minimal command-line argument parser for the examples and benchmark
/// harnesses (mirrors the paper artifact's `-argument value` style,
/// e.g. `-mat_file X -sweep_max 20 -solver sos_sds`, plus flag arguments).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsouth::util {

/// Parses `-name value` pairs and bare `-flag` switches. A token starting
/// with '-' whose successor also starts with '-' (or is absent) is a flag.
/// Numeric lookups validate and throw CheckError on malformed values.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& dflt) const;
  std::int64_t get_int_or(const std::string& name, std::int64_t dflt) const;
  double get_double_or(const std::string& name, double dflt) const;

  /// Comma-separated list of integers, e.g. "-procs 32,64,128".
  std::vector<std::int64_t> get_int_list_or(
      const std::string& name, const std::vector<std::int64_t>& dflt) const;

  /// Value restricted to a fixed choice set, e.g.
  /// `-backend sequential|threads`. Throws CheckError when the given value
  /// is not one of `choices`; `dflt` (returned when absent) need not be.
  std::string get_choice_or(const std::string& name,
                            const std::vector<std::string>& choices,
                            const std::string& dflt) const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// Names seen on the command line that were never queried — useful for
  /// catching typos in scripts. (Call after all get()s.)
  std::vector<std::string> unqueried() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;  // name -> value ("" for flags)
  mutable std::map<std::string, bool> queried_;
};

}  // namespace dsouth::util
