#pragma once

/// \file table.hpp
/// ASCII table formatting for the benchmark harnesses. Every table the
/// benches print (Tables 2-4 of the paper and the figure-series dumps) goes
/// through this class so the layout is uniform and alignment is correct.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dsouth::util {

/// Column-aligned table with a header row. Cells are strings; numeric
/// helpers format with a fixed precision. A cell may be flagged as "dagger"
/// (the paper's † for methods that failed to reach the target residual).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls append to it.
  Table& row();

  Table& cell(const std::string& text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell_int(long long value);
  /// The paper's † marker for "did not reach the target in 50 steps".
  Table& dagger();

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Render with single-space-padded columns and a separator rule.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with csv.cpp).
std::string format_double(double value, int precision);

}  // namespace dsouth::util
