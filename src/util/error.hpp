#pragma once

/// \file error.hpp
/// Lightweight precondition / invariant checking for the dsouth library.
///
/// DSOUTH_CHECK is always on (it guards user-facing API contracts and costs
/// one predictable branch); DSOUTH_ASSERT compiles away in NDEBUG builds and
/// is used on hot paths for internal invariants.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dsouth::util {

/// Exception thrown when a DSOUTH_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void throw_check_error(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "dsouth check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace dsouth::util

#define DSOUTH_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dsouth::util::throw_check_error(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define DSOUTH_CHECK_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::dsouth::util::throw_check_error(#cond, __FILE__, __LINE__,         \
                                        os_.str());                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define DSOUTH_ASSERT(cond) ((void)0)
#else
#define DSOUTH_ASSERT(cond) DSOUTH_CHECK(cond)
#endif
