#pragma once

/// \file indexed_heap.hpp
/// Indexed binary max-heap over a fixed key range [0, n).
///
/// The Sequential Southwell method relaxes, at every step, the equation with
/// the largest |r_i|; each relaxation then changes the residuals of the
/// neighbors of i. That access pattern — extract-max plus O(degree) key
/// updates — is exactly what an indexed heap supports in O(log n) per
/// operation. The key type is templated so tests can exercise integers too.

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace dsouth::util {

/// Max-heap keyed by `Key`, holding a subset of the ids [0, n).
/// All operations are O(log n); `contains`, `key_of`, `size` are O(1).
template <typename Key>
class IndexedMaxHeap {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit IndexedMaxHeap(std::size_t n) : pos_(n, npos), key_(n) {}

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  std::size_t capacity_ids() const { return pos_.size(); }

  bool contains(std::size_t id) const {
    DSOUTH_ASSERT(id < pos_.size());
    return pos_[id] != npos;
  }

  const Key& key_of(std::size_t id) const {
    DSOUTH_CHECK(contains(id));
    return key_[id];
  }

  /// Insert id with the given key; id must not already be present.
  void push(std::size_t id, Key key) {
    DSOUTH_CHECK_MSG(!contains(id), "id " << id << " already in heap");
    key_[id] = key;
    pos_[id] = heap_.size();
    heap_.push_back(id);
    sift_up(pos_[id]);
  }

  /// Id with the maximum key. Ties are broken toward whatever id happens to
  /// sit at the root — deterministic given a deterministic op sequence.
  std::size_t top() const {
    DSOUTH_CHECK(!empty());
    return heap_[0];
  }

  const Key& top_key() const { return key_[top()]; }

  /// Remove and return the id with the maximum key.
  std::size_t pop() {
    DSOUTH_CHECK(!empty());
    std::size_t id = heap_[0];
    remove_at(0);
    return id;
  }

  /// Change the key of a present id (up or down).
  void update(std::size_t id, Key key) {
    DSOUTH_CHECK(contains(id));
    Key old = key_[id];
    key_[id] = key;
    if (key > old) {
      sift_up(pos_[id]);
    } else if (key < old) {
      sift_down(pos_[id]);
    }
  }

  /// Insert if absent, otherwise update.
  void push_or_update(std::size_t id, Key key) {
    if (contains(id)) {
      update(id, key);
    } else {
      push(id, key);
    }
  }

  /// Remove a present id.
  void erase(std::size_t id) {
    DSOUTH_CHECK(contains(id));
    remove_at(pos_[id]);
  }

  /// Validate the heap property and the id<->slot mapping (for tests).
  bool invariants_hold() const {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pos_[heap_[i]] != i) return false;
      std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < heap_.size() && key_[heap_[l]] > key_[heap_[i]]) return false;
      if (r < heap_.size() && key_[heap_[r]] > key_[heap_[i]]) return false;
    }
    std::size_t present = 0;
    for (std::size_t id = 0; id < pos_.size(); ++id) {
      if (pos_[id] != npos) {
        ++present;
        if (pos_[id] >= heap_.size() || heap_[pos_[id]] != id) return false;
      }
    }
    return present == heap_.size();
  }

 private:
  void remove_at(std::size_t slot) {
    std::size_t id = heap_[slot];
    std::size_t last = heap_.size() - 1;
    if (slot != last) {
      heap_[slot] = heap_[last];
      pos_[heap_[slot]] = slot;
    }
    heap_.pop_back();
    pos_[id] = npos;
    if (slot < heap_.size()) {
      sift_up(slot);
      sift_down(slot);
    }
  }

  void sift_up(std::size_t slot) {
    std::size_t id = heap_[slot];
    while (slot > 0) {
      std::size_t parent = (slot - 1) / 2;
      if (!(key_[id] > key_[heap_[parent]])) break;
      heap_[slot] = heap_[parent];
      pos_[heap_[slot]] = slot;
      slot = parent;
    }
    heap_[slot] = id;
    pos_[id] = slot;
  }

  void sift_down(std::size_t slot) {
    std::size_t id = heap_[slot];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t l = 2 * slot + 1;
      if (l >= n) break;
      std::size_t r = l + 1;
      std::size_t big = (r < n && key_[heap_[r]] > key_[heap_[l]]) ? r : l;
      if (!(key_[heap_[big]] > key_[id])) break;
      heap_[slot] = heap_[big];
      pos_[heap_[slot]] = slot;
      slot = big;
    }
    heap_[slot] = id;
    pos_[id] = slot;
  }

  std::vector<std::size_t> heap_;  // slot -> id
  std::vector<std::size_t> pos_;   // id -> slot (npos if absent)
  std::vector<Key> key_;           // id -> key (valid while present)
};

}  // namespace dsouth::util
