#include "util/interp.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dsouth::util {

std::optional<double> first_crossing_log10(
    const std::vector<double>& residuals, double target) {
  DSOUTH_CHECK(target > 0.0);
  if (residuals.empty()) return std::nullopt;
  if (residuals[0] <= target) return 0.0;
  const double lt = std::log10(target);
  for (std::size_t k = 1; k < residuals.size(); ++k) {
    if (residuals[k] <= target) {
      double a = std::log10(residuals[k - 1]);
      // Guard: a zero residual has log10 = -inf; the crossing is then taken
      // at the right endpoint of the interval.
      if (residuals[k] <= 0.0) return static_cast<double>(k);
      double b = std::log10(residuals[k]);
      double frac = (a - lt) / (a - b);  // in (0, 1]
      return static_cast<double>(k - 1) + frac;
    }
  }
  return std::nullopt;
}

double interpolate_series(const std::vector<double>& series, double s) {
  DSOUTH_CHECK(!series.empty());
  DSOUTH_CHECK(s >= 0.0);
  DSOUTH_CHECK(s <= static_cast<double>(series.size() - 1) + 1e-12);
  if (series.size() == 1) return series[0];
  auto k = static_cast<std::size_t>(s);
  if (k >= series.size() - 1) return series.back();
  double frac = s - static_cast<double>(k);
  return series[k] + frac * (series[k + 1] - series[k]);
}

}  // namespace dsouth::util
