#pragma once

/// \file json.hpp
/// Minimal JSON emission helpers for the trace exporters (and any other
/// machine-readable output). Emission only — the repo never needs to parse
/// JSON; tests that validate exporter output carry their own tiny parser.

#include <string>
#include <string_view>

namespace dsouth::util {

/// RFC 8259 string escaping: backslash, double quote, and control
/// characters (\b \f \n \r \t, \u00XX for the rest). Input is passed
/// through byte-wise, so valid UTF-8 stays valid UTF-8.
std::string json_escape(std::string_view s);

/// Append `v` to `out` as a JSON number token that round-trips the double
/// exactly (the shortest of %.15g/%.16g/%.17g that parses back bit-equal).
/// Non-finite values — which JSON cannot represent — are emitted as null.
void append_json_number(std::string& out, double v);

/// Convenience wrapper around append_json_number.
std::string json_number(double v);

}  // namespace dsouth::util
