#pragma once

/// \file json.hpp
/// Minimal JSON support for the machine-readable outputs: emission helpers
/// (used by the trace exporters and the bench `-json` records) and a small
/// strict RFC 8259 parser (used by the analysis layer to read JSONL traces
/// back, and by the round-trip tests).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsouth::util {

/// RFC 8259 string escaping: backslash, double quote, and control
/// characters (\b \f \n \r \t, \u00XX for the rest). Input is passed
/// through byte-wise, so valid UTF-8 stays valid UTF-8.
std::string json_escape(std::string_view s);

/// Append `v` to `out` as a JSON number token that round-trips the double
/// exactly (the shortest of %.15g/%.16g/%.17g that parses back bit-equal).
/// Non-finite values — which JSON cannot represent — are emitted as `null`
/// (and parse back as JsonValue null; callers that need NaN/Inf must carry
/// them out of band).
void append_json_number(std::string& out, double v);

/// Convenience wrapper around append_json_number.
std::string json_number(double v);

/// `"escaped"` — json_escape plus the surrounding quotes.
std::string json_quote(std::string_view s);

/// A parsed JSON document node. Objects preserve insertion order (the
/// analyzer's reports are rendered in schema order and compared
/// byte-for-byte across backends).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw CheckError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  /// as_number, checked to be integral and in int64 range.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  /// Object entries in document order.
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup: nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Member lookup that throws CheckError when the key is absent.
  const JsonValue& at(std::string_view key) const;

  /// Factories (used by tests building expected documents).
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

  /// Serialize back to compact JSON (object order preserved, numbers via
  /// append_json_number — so parse(dump(v)) round-trips).
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Strict parse of one JSON document (throws CheckError on syntax errors or
/// trailing garbage). `\uXXXX` escapes decode to UTF-8, including surrogate
/// pairs; duplicate object keys keep the last value (RFC 8259 §4 behavior).
JsonValue parse_json(std::string_view text);

/// Parse the first JSON document on `text` starting at `pos`; advances
/// `pos` past it (whitespace included). The JSONL reader uses this
/// line-by-line.
JsonValue parse_json_prefix(std::string_view text, std::size_t& pos);

}  // namespace dsouth::util
