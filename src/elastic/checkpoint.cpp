#include "elastic/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace dsouth::elastic {

namespace {

constexpr std::uint64_t kMagic = 0x44534f5554484c45ULL;  // "DSOUTHLE"
constexpr std::size_t kHeaderWords = 9;

std::uint64_t fnv1a(std::span<const std::uint64_t> words) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words) {
    // Hash byte-wise so the digest matches the serialized little-endian
    // bytes, not the host's word layout.
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

/// Word-stream writer: everything travels as u64 (doubles bit-cast).
class Writer {
 public:
  void u64(std::uint64_t v) { words_.push_back(v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void doubles(std::span<const double> v) {
    u64(v.size());
    for (double d : v) f64(d);
  }
  void u64s(std::span<const std::uint64_t> v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }

  std::vector<std::uint64_t>& words() { return words_; }

 private:
  std::vector<std::uint64_t> words_;
};

/// Bounds-checked word-stream reader (mirror of Writer).
class Reader {
 public:
  explicit Reader(std::span<const std::uint64_t> words) : words_(words) {}

  std::uint64_t u64() {
    DSOUTH_CHECK_MSG(pos_ < words_.size(), "checkpoint: truncated payload");
    return words_[pos_++];
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::vector<double> doubles() {
    const std::uint64_t n = len();
    std::vector<double> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }
  std::vector<std::uint64_t> u64s() {
    const std::uint64_t n = len();
    std::vector<std::uint64_t> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
    return v;
  }
  bool done() const { return pos_ == words_.size(); }

 private:
  std::uint64_t len() {
    const std::uint64_t n = u64();
    DSOUTH_CHECK_MSG(n <= words_.size() - pos_,
                     "checkpoint: length prefix " << n
                                                  << " exceeds remaining "
                                                  << words_.size() - pos_);
    return n;
  }

  std::span<const std::uint64_t> words_;
  std::size_t pos_ = 0;
};

void write_runtime(Writer& w, const simmpi::RuntimeState& rs) {
  w.u64(rs.epochs);
  w.f64(rs.model_time);
  w.f64(rs.last_epoch_seconds);
  w.u64(rs.delivery_state);
  w.u64(rs.arrival_counter);
  w.u64s(rs.lane_seq);
  std::vector<std::uint64_t> stats;
  rs.stats.save(stats);
  w.u64s(stats);
  w.u64(rs.window_msgs.size());
  for (const auto& m : rs.window_msgs) {
    w.i64(m.dest);
    w.i64(m.source);
    w.i64(static_cast<int>(m.tag));
    w.doubles(m.payload);
  }
  w.u64(rs.deferred.size());
  for (const auto& m : rs.deferred) {
    w.i64(m.dest);
    w.i64(m.source);
    w.i64(static_cast<int>(m.tag));
    w.u64(m.seq);
    w.u64(m.staged_epoch);
    w.u64(m.deliver_epoch);
    w.u64(m.arrival);
    w.doubles(m.payload);
  }
}

simmpi::MsgTag read_tag(Reader& r) {
  const std::int64_t t = r.i64();
  DSOUTH_CHECK_MSG(t >= 0 && t < simmpi::kNumTags,
                   "checkpoint: bad message tag " << t);
  return static_cast<simmpi::MsgTag>(t);
}

simmpi::RuntimeState read_runtime(Reader& r, int num_ranks) {
  simmpi::RuntimeState rs(num_ranks);
  rs.epochs = r.u64();
  rs.model_time = r.f64();
  rs.last_epoch_seconds = r.f64();
  rs.delivery_state = r.u64();
  rs.arrival_counter = r.u64();
  rs.lane_seq = r.u64s();
  DSOUTH_CHECK_MSG(
      rs.lane_seq.size() == static_cast<std::size_t>(num_ranks),
      "checkpoint: lane_seq count " << rs.lane_seq.size() << " != ranks "
                                    << num_ranks);
  const std::vector<std::uint64_t> stats = r.u64s();
  rs.stats.load(stats);
  const std::uint64_t n_win = r.u64();
  rs.window_msgs.reserve(n_win);
  for (std::uint64_t i = 0; i < n_win; ++i) {
    simmpi::RuntimeState::WindowMsg m;
    m.dest = static_cast<int>(r.i64());
    m.source = static_cast<int>(r.i64());
    m.tag = read_tag(r);
    m.payload = r.doubles();
    rs.window_msgs.push_back(std::move(m));
  }
  const std::uint64_t n_def = r.u64();
  rs.deferred.reserve(n_def);
  for (std::uint64_t i = 0; i < n_def; ++i) {
    simmpi::RuntimeState::InFlight m;
    m.dest = static_cast<int>(r.i64());
    m.source = static_cast<int>(r.i64());
    m.tag = read_tag(r);
    m.seq = r.u64();
    m.staged_epoch = r.u64();
    m.deliver_epoch = r.u64();
    m.arrival = r.u64();
    m.payload = r.doubles();
    rs.deferred.push_back(std::move(m));
  }
  return rs;
}

void write_solver(Writer& w,
                  const dist::DistStationarySolver::SolverState& ss) {
  w.i64(ss.resil_step_count);
  auto nested = [&w](const auto& outer) {
    w.u64(outer.size());
    for (const auto& inner : outer) w.doubles(inner);
  };
  nested(ss.x);
  nested(ss.r);
  w.u64(ss.send_seq.size());
  for (const auto& per_peer : ss.send_seq) w.u64s(per_peer);
  w.u64(ss.ghost_x.size());
  for (const auto& per_peer : ss.ghost_x) nested(per_peer);
  w.u64(ss.recv_min_seq.size());
  for (const auto& per_peer : ss.recv_min_seq) w.u64s(per_peer);
  w.u64(ss.last_send_step.size());
  for (const auto& per_peer : ss.last_send_step) {
    w.u64(per_peer.size());
    for (index_t s : per_peer) w.i64(s);
  }
  w.u64(ss.resil_stats.size());
  for (const auto& rs : ss.resil_stats) {
    w.u64(rs.rejected_corrupt);
    w.u64(rs.rejected_stale);
    w.u64(rs.refreshes_sent);
  }
  w.doubles(ss.extra);
}

dist::DistStationarySolver::SolverState read_solver(Reader& r) {
  dist::DistStationarySolver::SolverState ss;
  ss.resil_step_count = static_cast<index_t>(r.i64());
  auto nested = [&r](auto& outer) {
    const std::uint64_t n = r.u64();
    outer.resize(n);
    for (auto& inner : outer) inner = r.doubles();
  };
  nested(ss.x);
  nested(ss.r);
  ss.send_seq.resize(r.u64());
  for (auto& per_peer : ss.send_seq) per_peer = r.u64s();
  ss.ghost_x.resize(r.u64());
  for (auto& per_peer : ss.ghost_x) nested(per_peer);
  ss.recv_min_seq.resize(r.u64());
  for (auto& per_peer : ss.recv_min_seq) per_peer = r.u64s();
  ss.last_send_step.resize(r.u64());
  for (auto& per_peer : ss.last_send_step) {
    per_peer.resize(r.u64());
    for (auto& s : per_peer) s = static_cast<index_t>(r.i64());
  }
  ss.resil_stats.resize(r.u64());
  for (auto& rs : ss.resil_stats) {
    rs.rejected_corrupt = r.u64();
    rs.rejected_stale = r.u64();
    rs.refreshes_sent = r.u64();
  }
  ss.extra = r.doubles();
  return ss;
}

}  // namespace

std::vector<std::uint8_t> encode(const Checkpoint& c) {
  DSOUTH_CHECK(c.num_ranks > 0);
  Writer w;
  write_runtime(w, c.runtime);
  write_solver(w, c.solver);
  const std::vector<std::uint64_t>& payload = w.words();

  std::vector<std::uint64_t> all;
  all.reserve(kHeaderWords + payload.size());
  all.push_back(kMagic);
  all.push_back(kCheckpointVersion);
  all.push_back(payload.size());
  all.push_back(fnv1a(payload));
  all.push_back(static_cast<std::uint64_t>(c.num_ranks));
  all.push_back(static_cast<std::uint64_t>(c.method));
  all.push_back(c.flags);
  all.push_back(c.epoch);
  all.push_back(static_cast<std::uint64_t>(c.step));
  all.insert(all.end(), payload.begin(), payload.end());

  // Explicit little-endian serialization: buffers are comparable (and in
  // principle portable) across hosts, not just within one process.
  std::vector<std::uint8_t> bytes(8 * all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      bytes[8 * i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>((all[i] >> (8 * b)) & 0xffULL);
    }
  }
  return bytes;
}

Checkpoint decode(std::span<const std::uint8_t> bytes) {
  DSOUTH_CHECK_MSG(bytes.size() % 8 == 0 &&
                       bytes.size() >= 8 * kHeaderWords,
                   "checkpoint: bad buffer size " << bytes.size());
  std::vector<std::uint64_t> all(bytes.size() / 8);
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::uint64_t w = 0;
    for (int b = 0; b < 8; ++b) {
      w |= static_cast<std::uint64_t>(bytes[8 * i + static_cast<std::size_t>(b)])
           << (8 * b);
    }
    all[i] = w;
  }
  DSOUTH_CHECK_MSG(all[0] == kMagic, "checkpoint: bad magic");
  DSOUTH_CHECK_MSG(all[1] == kCheckpointVersion,
                   "checkpoint: unsupported version " << all[1]);
  const std::uint64_t payload_words = all[2];
  DSOUTH_CHECK_MSG(all.size() == kHeaderWords + payload_words,
                   "checkpoint: payload length mismatch");
  const std::span<const std::uint64_t> payload(all.data() + kHeaderWords,
                                               payload_words);
  DSOUTH_CHECK_MSG(fnv1a(payload) == all[3], "checkpoint: checksum mismatch");

  Checkpoint c;
  c.num_ranks = static_cast<int>(all[4]);
  DSOUTH_CHECK_MSG(c.num_ranks > 0, "checkpoint: bad rank count");
  c.method = static_cast<int>(all[5]);
  c.flags = all[6];
  c.epoch = all[7];
  c.step = static_cast<index_t>(all[8]);

  Reader r(payload);
  c.runtime = read_runtime(r, c.num_ranks);
  c.solver = read_solver(r);
  DSOUTH_CHECK_MSG(r.done(), "checkpoint: trailing payload words");
  return c;
}

}  // namespace dsouth::elastic
