#pragma once

/// \file elastic.hpp
/// Elastic ranks: checkpoint/restart and live repartitioning after
/// permanent rank failure (docs/resilience.md "Permanent failure and
/// recovery", DESIGN.md §15).
///
/// run_elastic wraps the classic experiment loop (dist/driver.cpp) with
/// three responsibilities:
///
///   1. **Checkpoint.** Every `checkpoint_every` parallel steps it captures
///      the complete deterministic run state — simmpi::Runtime cursors,
///      counters, windows and in-flight messages plus the solver's iterate,
///      residuals, channel sequence numbers and private state — into a
///      versioned byte buffer (elastic/checkpoint.hpp). Capture is
///      observer-side: a fault-free elastic run is byte-identical to
///      run_distributed, series for series and trace for trace.
///
///   2. **Detect.** After each step it asks the fault schedule which ranks
///      are permanently dead (faults::RankKill / RandomKills — the runtime
///      has already silenced them; peers only observed missing messages).
///
///   3. **Recover.** On a detected death it rolls the recorded series back
///      to the last checkpoint, redistributes the dead rank's rows over the
///      survivors with graph::repartition_after_failure (incremental: the
///      surviving assignment is kept except for FM boundary polish), builds
///      a fresh DistLayout/CommPlan/solver generation over the new
///      partition, restores the runtime cursors (epoch, model time,
///      CommStats, RNG state) from the checkpoint — in-flight traffic is
///      dropped, exactly what a real failover loses — and resumes from the
///      checkpointed global iterate. What each solver re-derives on the new
///      layout vs. genuinely resets is its RecoveryContract
///      (dist/solver_base.hpp).
///
/// Determinism: every ingredient (kill draws, checkpoint bytes,
/// repartition, rebuilt layout, resumed stepping) is deterministic and
/// backend-independent, so an elastic run — including its recoveries — is
/// bit-reproducible across the sequential and thread-pool backends.

#include <cstdint>
#include <span>
#include <vector>

#include "dist/driver.hpp"
#include "graph/partition.hpp"

namespace dsouth::elastic {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

/// Elastic-driver knobs, mirroring the shape of ResilienceOptions.
struct RecoveryOptions {
  /// Master switch: disabled, run_elastic degenerates to run_distributed
  /// (no checkpoints, no detection — byte-identical by construction).
  bool enabled = true;
  /// Parallel steps between checkpoints. A checkpoint is always taken
  /// before step 1 and immediately after every recovery (the stored buffer
  /// must match the *current* partition generation); this period paces the
  /// ones in between. 0 keeps only those mandatory checkpoints.
  index_t checkpoint_every = 8;
  /// Partition-refinement knobs for the post-failure FM polish.
  graph::PartitionOptions repartition{};
};

/// One detected death and the recovery that followed.
struct RecoveryEvent {
  int dead_rank = -1;
  std::uint64_t kill_epoch = 0;   ///< epoch the rank died at (schedule)
  index_t detected_step = 0;      ///< parallel step after which detected
  index_t resumed_step = 0;       ///< checkpoint step the run rolled back to
  index_t rows_moved = 0;         ///< rows redistributed off the dead rank
  std::uint64_t checkpoint_bytes = 0;  ///< size of the restored buffer
};

/// run_distributed's result plus the elastic bookkeeping.
struct ElasticRunResult {
  /// Series/totals of the run as finally recorded: on recovery the series
  /// roll back to the checkpoint step and continue, so index k is "state
  /// after k surviving parallel steps" exactly as in a plain run. Totals
  /// and fault summary describe the final generation (whose CommStats were
  /// restored from the checkpoint, i.e. they are cumulative minus the
  /// rolled-back work). The trace log is the final generation's too, except
  /// that the elastic events (checkpoints, kills, restores, repartitions)
  /// are journaled across generations and replayed into each fresh tracer,
  /// so the full recovery story survives in order.
  dist::DistRunResult run;
  /// One entry per dead rank, in detection order.
  std::vector<RecoveryEvent> recoveries;
  index_t checkpoints_taken = 0;
  std::uint64_t last_checkpoint_bytes = 0;
  /// The partition the run finished on (dead parts empty).
  graph::Partition final_partition;
};

/// Run `method` on (a, partition, b, x0) under `opt` with elastic
/// checkpoint/restart per `rec`. Takes the matrix (not a prebuilt layout)
/// because recovery rebuilds the layout from a new partition.
ElasticRunResult run_elastic(dist::DistMethod method, const CsrMatrix& a,
                             const graph::Partition& partition,
                             std::span<const value_t> b,
                             std::span<const value_t> x0,
                             const dist::DistRunOptions& opt = {},
                             const RecoveryOptions& rec = {});

}  // namespace dsouth::elastic
