#include "elastic/elastic.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "dist/harness.hpp"
#include "elastic/checkpoint.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace dsouth::elastic {

namespace {

/// The configuration bits stamped into every checkpoint header.
std::uint64_t config_flags(const dist::DistRunOptions& opt) {
  std::uint64_t flags = 0;
  // Async delivery force-enables resilience (RunHarness does the same).
  if (opt.resilience.enabled || opt.async) flags |= kFlagResilience;
  if (opt.coalesce_messages) flags |= kFlagCoalescing;
  if (opt.async) flags |= kFlagAsync;
  if (!opt.node_map.empty() || opt.ranks_per_node > 0 || opt.num_nodes > 0) {
    flags |= kFlagNodeTopology;
  }
  return flags;
}

}  // namespace

ElasticRunResult run_elastic(dist::DistMethod method, const CsrMatrix& a,
                             const graph::Partition& partition,
                             std::span<const value_t> b,
                             std::span<const value_t> x0,
                             const dist::DistRunOptions& opt,
                             const RecoveryOptions& rec) {
  ElasticRunResult out;
  out.final_partition = partition;
  if (!rec.enabled) {
    out.run = dist::run_distributed(method, a, partition, b, x0, opt);
    return out;
  }

  // The adjacency graph is the repartitioner's substrate; built once — a
  // failure changes the partition, never the matrix.
  const graph::Graph g = graph::Graph::from_matrix_structure(a);
  graph::Partition part = partition;
  auto layout = std::make_unique<dist::DistLayout>(a, part);
  auto h = std::make_unique<dist::RunHarness>(method, *layout, b, x0, opt);
  const int num_ranks = h->runtime().num_ranks();
  const std::uint64_t flags = config_flags(opt);

  dist::DistRunResult result;
  h->init_result(result);
  h->record_state(result);

  // kElastic trace events are recorded only when the plan configures
  // kills, so a fault-free elastic trace stays byte-identical to a plain
  // run_distributed trace (the acceptance invariant test_elastic pins).
  //
  // Each generation rebuild discards the old harness's tracer, so the
  // surviving elastic history (checkpoints, earlier kills) is kept in a
  // journal and replayed into every fresh tracer — the final trace then
  // tells the whole recovery story in order, which is what the analyzer's
  // restore-ordering rule checks. Replayed events are re-stamped with the
  // post-restore epoch/time, consistent with the rolled-back series.
  struct ElasticEvent {
    int action;
    double a0, a1;
  };
  std::vector<ElasticEvent> journal;
  auto record_event = [&](int action, double a0, double a1) {
    trace::Tracer* tracer = h->tracer();
    const faults::FaultSchedule* sched = h->fault_schedule();
    if (tracer && sched && sched->any_kills()) {
      tracer->record(/*rank=*/0, trace::EventKind::kElastic, /*peer=*/-1,
                     action, a0, a1, h->runtime().epochs_completed(),
                     h->runtime().model_time_seconds());
    }
  };
  auto trace_elastic = [&](int action, double a0, double a1) {
    journal.push_back({action, a0, a1});
    record_event(action, a0, a1);
  };

  std::vector<std::uint8_t> ckpt_bytes;
  index_t ckpt_step = 0;
  auto take_checkpoint = [&](index_t step) {
    Checkpoint c;
    c.num_ranks = num_ranks;
    c.method = static_cast<int>(method);
    c.flags = flags;
    c.epoch = h->runtime().epochs_completed();
    c.step = step;
    c.runtime = h->runtime().capture_state();
    c.solver = h->solver().capture_state();
    ckpt_bytes = encode(c);
    ckpt_step = step;
    ++out.checkpoints_taken;
    out.last_checkpoint_bytes = ckpt_bytes.size();
    trace_elastic(/*action=*/0, static_cast<double>(ckpt_bytes.size()),
                  static_cast<double>(step));
  };
  take_checkpoint(0);

  std::vector<char> dead(static_cast<std::size_t>(num_ranks), 0);
  std::vector<index_t> dead_parts;
  std::vector<value_t> x_restored;

  index_t total_relax = 0;
  const double r0 = result.residual_norm.front();
  double best_rn = r0;
  index_t steps_since_best = 0;
  if (opt.profiler) opt.profiler->begin_alloc_window();
  index_t k = 0;  // surviving parallel steps recorded so far
  while (k < opt.max_parallel_steps) {
    util::Stopwatch wall;
    const dist::DistStepStats stats = [&] {
      const prof::ScopedPhase prof_step(opt.profiler, num_ranks,
                                        prof::PhaseId::kStep);
      return h->solver().step();
    }();
    result.wall_seconds += wall.seconds();
    ++k;
    total_relax += stats.relaxations;
    result.active_ranks.push_back(stats.active_ranks);
    h->record_state(result);
    result.relaxations.back() = static_cast<double>(total_relax);

    // --- Detect: which ranks were permanently dead during the step's
    // epochs? (dead() is monotone, so the last closed epoch suffices.)
    std::vector<int> newly;
    const faults::FaultSchedule* sched = h->fault_schedule();
    const std::uint64_t epochs_done = h->runtime().epochs_completed();
    if (sched && sched->any_kills() && epochs_done > 0) {
      for (int rk = 0; rk < num_ranks; ++rk) {
        if (!dead[static_cast<std::size_t>(rk)] &&
            sched->dead(rk, epochs_done - 1)) {
          newly.push_back(rk);
        }
      }
    }

    if (!newly.empty()) {
      // --- Recover: roll back to the checkpoint, repartition, rebuild.
      const std::vector<index_t> old_sizes = part.part_sizes();
      const index_t detected_step = k;
      for (int rk : newly) {
        dead[static_cast<std::size_t>(rk)] = 1;
        dead_parts.push_back(static_cast<index_t>(rk));
        RecoveryEvent ev;
        ev.dead_rank = rk;
        ev.kill_epoch = sched->kill_epoch(rk);
        ev.detected_step = detected_step;
        ev.rows_moved = old_sizes[static_cast<std::size_t>(rk)];
        ev.checkpoint_bytes = ckpt_bytes.size();
        out.recoveries.push_back(ev);
      }
      const auto survivors =
          static_cast<std::size_t>(num_ranks) - dead_parts.size();
      DSOUTH_CHECK_MSG(survivors > 0,
                       "elastic: every rank died — nothing to recover onto");

      Checkpoint c = decode(ckpt_bytes);
      // The checkpoint was captured on the current generation, so the
      // current layout maps its per-rank iterate back to a global vector.
      x_restored = layout->gather(c.solver.x);

      // Roll the recorded series back to the checkpoint step; the resumed
      // steps will overwrite history exactly as a real restart re-earns it.
      const auto keep = static_cast<std::size_t>(c.step);
      result.residual_norm.resize(keep + 1);
      result.model_time.resize(keep + 1);
      result.comm_cost.resize(keep + 1);
      result.solve_comm.resize(keep + 1);
      result.res_comm.resize(keep + 1);
      result.relaxations.resize(keep + 1);
      result.active_ranks.resize(keep);
      k = c.step;
      total_relax = static_cast<index_t>(result.relaxations.back());
      for (auto& ev : out.recoveries) {
        if (ev.detected_step == detected_step) ev.resumed_step = c.step;
      }

      part = graph::repartition_after_failure(g, part, dead_parts,
                                              rec.repartition);
      // Fresh generation: destroy the harness BEFORE its layout, then
      // rebuild both over the new partition, seeding the solver with the
      // checkpointed iterate (residuals are re-derived exactly, estimates
      // re-seeded — see RecoveryContract).
      h.reset();
      layout = std::make_unique<dist::DistLayout>(a, part);
      h = std::make_unique<dist::RunHarness>(method, *layout, b, x_restored,
                                             opt);
      // Restore the runtime's deterministic cursors (epoch, model time,
      // stats, RNG and send counters). In-flight traffic is NOT restored:
      // a permanent failure loses it, and the fresh solver's setup re-seeds
      // every ghost cache, so nothing depends on it.
      simmpi::RuntimeState rs = c.runtime;
      rs.window_msgs.clear();
      rs.deferred.clear();
      h->runtime().restore_state(rs);

      // Replay the surviving elastic history into the fresh tracer before
      // recording this recovery's own events.
      for (const auto& ev : journal) record_event(ev.action, ev.a0, ev.a1);

      for (const auto& ev : out.recoveries) {
        if (ev.detected_step != detected_step) continue;
        trace_elastic(/*action=*/1, static_cast<double>(ev.dead_rank),
                      static_cast<double>(ev.kill_epoch));
        trace_elastic(/*action=*/3, static_cast<double>(ev.dead_rank),
                      static_cast<double>(ev.rows_moved));
      }
      trace_elastic(/*action=*/2, static_cast<double>(c.step),
                    static_cast<double>(c.epoch));

      // Watchdog bookkeeping rolls back with the series.
      best_rn = r0;
      for (double rn : result.residual_norm) best_rn = std::min(best_rn, rn);
      steps_since_best = 0;

      // Re-checkpoint immediately: the stored buffer must always match the
      // current generation (a second failure restores onto THIS layout).
      take_checkpoint(k);
      continue;
    }

    // --- Observer-side stop rules, identical to run_distributed.
    const double rn = result.residual_norm.back();
    if (opt.stop_at_residual > 0.0 && rn <= opt.stop_at_residual) break;
    if (opt.divergence_abort > 0.0 && rn >= opt.divergence_abort) break;
    if (opt.watchdog.enabled) {
      if (!std::isfinite(rn)) {
        result.watchdog = {true, "non-finite residual", k};
        break;
      }
      if (rn > opt.watchdog.growth_factor * r0) {
        result.watchdog = {true, "residual exceeded growth_factor x initial",
                           k};
        break;
      }
      if (rn < best_rn) {
        best_rn = rn;
        steps_since_best = 0;
      } else if (opt.watchdog.stall_steps > 0 &&
                 ++steps_since_best >= opt.watchdog.stall_steps) {
        result.watchdog = {true, "residual stalled", k};
        break;
      }
    }

    if (rec.checkpoint_every > 0 && k - ckpt_step >= rec.checkpoint_every) {
      take_checkpoint(k);
    }
  }
  h->drain_if_async();
  if (opt.profiler) opt.profiler->end_alloc_window();
  result.final_x = h->solver().gather_x();
  h->fill_totals(result);
  h->finish(result);
  out.run = std::move(result);
  out.final_partition = std::move(part);
  return out;
}

}  // namespace dsouth::elastic
