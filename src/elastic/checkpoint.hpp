#pragma once

/// \file checkpoint.hpp
/// Versioned byte-buffer checkpoint codec for elastic restart
/// (docs/resilience.md "Permanent failure and recovery", DESIGN.md §15).
///
/// A checkpoint is the complete deterministic mid-run state of a
/// distributed solve, captured between parallel steps: the runtime's
/// cursors, counters, unconsumed windows, and in-flight deferred messages
/// (simmpi::RuntimeState) plus the solver's iterate, residuals, channel
/// sequence numbers, resilient caches, and private extension stream
/// (dist::DistStationarySolver::SolverState). Because every captured field
/// is bit-identical across execution backends (the fence-merge guarantee),
/// the encoded buffer is too: encoding the same run state on the
/// sequential and thread-pool backends yields byte-identical buffers, and
/// restoring one resumes the run byte-identically on either
/// (tests/test_elastic.cpp).
///
/// Wire format (all integers little-endian u64, all floating-point fields
/// bit-cast to u64 — values round-trip exactly, including NaN payloads):
///
///   header:  magic, version, payload words, checksum,
///            num_ranks, method id, flags, epoch, step
///   payload: RuntimeState fields, then SolverState fields, each
///            length-prefixed where variable-sized.
///
/// The checksum is FNV-1a 64 over the payload words; decode() verifies it
/// and every length prefix, so a truncated or bit-flipped buffer fails
/// loudly instead of resuming from garbage. `method`/`flags` identify the
/// configuration that captured the state — restoring into a different
/// solver class or feature combination is a caller error the elastic
/// driver checks before touching any solver.

#include <cstdint>
#include <span>
#include <vector>

#include "dist/solver_base.hpp"
#include "simmpi/runtime.hpp"

namespace dsouth::elastic {

using sparse::index_t;

/// Current encoder version (decode() rejects anything else).
inline constexpr std::uint64_t kCheckpointVersion = 1;

/// Configuration bits carried in the header's `flags` word. They pin the
/// feature combination the state was captured under; restore into a
/// differently-configured stack is refused by the driver.
inline constexpr std::uint64_t kFlagResilience = 1ULL << 0;
inline constexpr std::uint64_t kFlagCoalescing = 1ULL << 1;
inline constexpr std::uint64_t kFlagAsync = 1ULL << 2;
inline constexpr std::uint64_t kFlagNodeTopology = 1ULL << 3;

/// One decoded (or to-be-encoded) checkpoint.
struct Checkpoint {
  int num_ranks = 0;
  int method = 0;           ///< dist::DistMethod as int
  std::uint64_t flags = 0;  ///< kFlag* combination at capture
  std::uint64_t epoch = 0;  ///< Runtime::epochs_completed() at capture
  index_t step = 0;         ///< parallel steps completed at capture

  simmpi::RuntimeState runtime{1};
  dist::DistStationarySolver::SolverState solver;
};

/// Serialize to the versioned byte buffer described above.
std::vector<std::uint8_t> encode(const Checkpoint& c);

/// Parse and verify (magic, version, checksum, every length prefix) a
/// buffer produced by encode(). Malformed input is checked fatal — a
/// checkpoint is trusted state, not a network input, so corruption means
/// the experiment itself is broken.
Checkpoint decode(std::span<const std::uint8_t> bytes);

}  // namespace dsouth::elastic
