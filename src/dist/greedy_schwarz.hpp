#pragma once

/// \file greedy_schwarz.hpp
/// Greedy multiplicative Schwarz (paper §2.2, Ref. [10]: "the subdomain
/// with the largest residual norm is chosen to be solved next") — the
/// block-level Sequential Southwell. It is inherently sequential, so it
/// does not run on the simulated runtime; it serves as the block-method
/// convergence reference the parallel methods are measured against (just
/// as scalar Sequential Southwell anchors Figures 2/5).

#include <span>
#include <vector>

#include "dist/layout.hpp"
#include "simmpi/execution.hpp"

namespace dsouth::dist {

struct GreedySchwarzOptions {
  /// Run length: total subdomain solves (each is one local GS sweep).
  index_t max_block_relaxations = 0;  ///< 0 = num_ranks (one "sweep")
  value_t target_residual = 0.0;      ///< stop early when reached (0 = off)
  /// Backend for the per-rank setup phase (initial residuals). The greedy
  /// loop itself is inherently sequential — one subdomain solve at a time
  /// is the method — so only setup parallelizes. Not owned; nullptr runs
  /// setup sequentially.
  simmpi::ExecutionBackend* backend = nullptr;
};

struct GreedySchwarzResult {
  /// ‖r‖₂ after each block relaxation ([0] = initial).
  std::vector<double> residual_norm;
  /// Which subdomain was solved at each step.
  std::vector<int> relaxed_rank;
  /// Cumulative row relaxations.
  index_t total_row_relaxations = 0;
  std::vector<value_t> x;  ///< final iterate
};

/// Run greedy multiplicative Schwarz over the layout's subdomains.
/// Selection is by exact residual norm (an indexed max-heap over ranks,
/// updated for the neighbors each solve touches).
GreedySchwarzResult run_greedy_schwarz(const DistLayout& layout,
                                       std::span<const value_t> b,
                                       std::span<const value_t> x0,
                                       const GreedySchwarzOptions& opt = {});

}  // namespace dsouth::dist
