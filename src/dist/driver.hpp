#pragma once

/// \file driver.hpp
/// Experiment driver for the distributed solvers: runs parallel steps,
/// records the exact metric series the paper's tables and figures are made
/// of (residual norm, modeled wall-clock, communication cost by category,
/// relaxations, active ranks), and extracts target-residual summaries with
/// the paper's log10 interpolation rule (Table 2 caption).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/distributed_southwell.hpp"
#include "dist/solver_base.hpp"
#include "faults/fault_plan.hpp"
#include "graph/partition.hpp"
#include "prof/prof.hpp"
#include "simmpi/execution.hpp"
#include "simmpi/machine_model.hpp"
#include "trace/trace.hpp"

namespace dsouth::dist {

enum class DistMethod {
  kBlockJacobi,
  kParallelSouthwell,
  kDistributedSouthwell,
  /// Multicolor Block Gauss-Seidel (paper §1's classical alternative);
  /// one parallel step per subdomain color.
  kMulticolorBlockGs,
};

const char* method_name(DistMethod m);
const char* method_abbrev(DistMethod m);  // BJ / PS / DS, as in the tables

/// Divergence watchdog (docs/resilience.md): observer-side checks on the
/// recorded residual series that stop a faulted run deterministically
/// instead of letting it hang or overflow. Fires are reported, never
/// thrown — histories keep everything recorded up to the stop.
struct WatchdogOptions {
  bool enabled = false;
  /// Fire when ‖r‖ exceeds growth_factor × the initial residual, or is
  /// NaN/Inf (always checked when enabled).
  double growth_factor = 1e3;
  /// Fire when the best residual seen has not improved for this many
  /// consecutive steps (0 disables the stall check).
  index_t stall_steps = 0;
};

struct WatchdogReport {
  bool fired = false;
  std::string reason;  ///< human-readable cause ("" unless fired)
  index_t step = 0;    ///< parallel step at which the watchdog fired
};

/// End-of-run fault/recovery accounting, present iff a nonzero FaultPlan
/// was attached (so zero-plan records stay identical to fault-free runs).
/// Injection counts come from the runtime's CommStats; rejection/refresh
/// counts from the solver's resilient receive path (zero when resilience
/// was off).
struct FaultSummary {
  std::uint64_t msgs_dropped = 0;
  std::uint64_t msgs_duplicated = 0;
  std::uint64_t msgs_corrupted = 0;  ///< bit-flipped or truncated
  /// Messages swallowed because an endpoint was permanently dead
  /// (faults::RankKill — staged, in-flight, or addressed to a dead rank).
  std::uint64_t msgs_dead_dropped = 0;
  std::uint64_t rejected_corrupt = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t refreshes_sent = 0;
};

/// End-of-run physical-hop accounting on the two-level network, present
/// iff a non-flat node topology was attached (DistRunOptions::
/// ranks_per_node / node_map). Counts come from the runtime's CommStats;
/// all integers, deterministic across backends.
struct NodeTotals {
  std::uint64_t msgs_intra = 0;   ///< intra-node physical hops
  std::uint64_t bytes_intra = 0;  ///< modeled bytes on the intra tier
  std::uint64_t msgs_inter = 0;   ///< inter-node physical hops
  std::uint64_t bytes_inter = 0;  ///< modeled bytes on the inter tier
  /// Leader->leader physical messages (bare or framed; routing on only).
  std::uint64_t forward_frames = 0;
  /// Logical wire records those messages carried.
  std::uint64_t forwarded_records = 0;
};

/// End-of-run asynchronous-delivery accounting, present iff the run used
/// the EventDriven policy (`DistRunOptions::async`). Counts come from the
/// runtime's CommStats; all integers, deterministic across backends.
struct AsyncTotals {
  std::uint64_t delivered = 0;      ///< messages matured after a latency draw
  std::uint64_t staleness_sum = 0;  ///< Σ (deliver epoch − staged epoch)
  std::uint64_t staleness_max = 0;  ///< worst observed staleness, in epochs
  std::uint64_t epochs = 0;         ///< total epochs the run closed
};

struct DistRunOptions {
  index_t max_parallel_steps = 50;  ///< the paper runs 50 everywhere
  /// Stop as soon as the recorded residual reaches this value (0 = run all
  /// steps; Table 2 post-processes full histories instead).
  value_t stop_at_residual = 0.0;
  /// Abort early if the residual exceeds this (divergence guard for the
  /// strong-scaling sweeps; 0 disables). Histories keep what was recorded.
  value_t divergence_abort = 0.0;
  simmpi::MachineModel machine{};
  /// Optional weak-delivery model (message delays) for robustness studies;
  /// defaults to faithful bulk-synchronous delivery.
  simmpi::DeliveryModel delivery{};
  /// Event-driven (asynchronous) delivery: attach an EventDrivenPolicy to
  /// the runtime and switch every solver to its relax-on-arrival step
  /// (one fused epoch per parallel step). Latency draws are stateless
  /// SplitMix64 hashes, so async runs are bit-identical across execution
  /// backends. Resilience is auto-enabled (async arrival is out-of-order
  /// by construction, and the seq-gated absolute-x receive path is what
  /// keeps DS's Γ̃ bookkeeping correct); this inherits resilience's
  /// incompatibilities (coalescing, DS send_threshold).
  bool async = false;
  /// Seed for the per-edge latency draws (async only).
  std::uint64_t async_seed = 0xA51CULL;
  /// Uniform extra-latency window, in epochs, for async message
  /// maturation: each message draws from [min, max] (async only).
  int async_min_latency = 0;
  int async_max_latency = 3;
  /// Hard bound enforced by the runtime on message staleness: a message
  /// staged at epoch e is delivered no later than the fence closing epoch
  /// e + max_staleness, whatever the latency draw said. 0 degenerates the
  /// policy to BulkSynchronous outright (BSP solver stepping, no deliver
  /// events, no async totals) — the run is then byte-identical to a
  /// non-async run with resilience enabled. Async only.
  std::uint64_t max_staleness = 4;
  DistributedSouthwellOptions ds{};
  /// Parallel Southwell ablation: disable explicit residual updates
  /// (the deadlock-prone Ref. [18] scheme).
  bool ps_explicit_residual_updates = true;
  /// Which ExecutionBackend runs the per-rank phases. Results are
  /// bit-identical across backends (the fence merge is deterministic);
  /// the thread pool only changes real wall-clock time.
  simmpi::BackendKind backend = simmpi::BackendKind::kSequential;
  /// Thread count for the thread-pool backend (0 = hardware concurrency).
  int num_threads = 0;
  /// Node-aware two-level topology (simmpi/node_topology.hpp, DESIGN.md
  /// §13, docs/communication.md). `ranks_per_node > 0` groups ranks into
  /// consecutive blocks of that size (rank r lives on node r /
  /// ranks_per_node); a non-empty `node_map` is an explicit rank -> node
  /// assignment and takes precedence. Either attaches the topology to the
  /// runtime for the whole run; both zero/empty (the default) — or a flat
  /// topology, one rank per node — leaves the runtime single-level and
  /// byte-identical to pre-node-aware builds. The topology only changes
  /// what the simulated wire *costs* (tiered machine-model charges, kHop
  /// trace events, NodeTotals), never what it delivers: solver iterates
  /// and residual histories are bit-identical with the feature on or off.
  int ranks_per_node = 0;
  std::vector<int> node_map;
  /// Convenience spelling of the same topology: split the P ranks into
  /// `num_nodes` consecutive blocks of ceil(P / num_nodes) ranks (the
  /// driver computes ranks_per_node from the layout's rank count, so
  /// callers that think in "number of machines" need not know P).
  /// Precedence: node_map, then ranks_per_node, then num_nodes.
  int num_nodes = 0;
  /// Route inter-node records through one leader rank per node (fan-in /
  /// fan-out aggregation — Runtime::set_node_topology). When false the
  /// topology only classifies traffic into tiers: the "direct" baseline
  /// the node-aware bench compares routing against. Ignored without a
  /// topology.
  bool node_route = true;
  /// Per-neighbor message coalescing (wire/comm_plan.hpp): each put phase
  /// ships all records a rank staged to one neighbor as a single physical
  /// message. Solver trajectories and residuals are bit-identical either
  /// way; with coalescing, CommTotals' physical counts can only drop while
  /// logical counts stay fixed. Default off — direct mode keeps the
  /// deterministic bench records byte-identical to the committed
  /// baselines.
  bool coalesce_messages = false;
  /// Structured tracing (src/trace). `trace.enabled = true` attaches a
  /// tracer to the runtime for the whole run; the merged event log and
  /// metric totals come back in DistRunResult::trace_log. The trace stream
  /// is deterministic: byte-identical across backends and thread counts
  /// (wall-clock timestamps are recorded but excluded from default
  /// exports). Disabled tracing has zero effect on results or stats.
  trace::TraceOptions trace{};
  /// Deterministic fault injection (src/faults). A schedule is compiled
  /// and attached to the runtime only when the plan is nonzero
  /// (`faults.any()`), so the default path is byte-identical to a
  /// fault-free build. Injected faults are bit-reproducible across
  /// execution backends.
  faults::FaultPlan faults{};
  /// Solver-side recovery (solver_base.hpp). Incompatible with
  /// coalesce_messages, and with ds.send_threshold for DS.
  ResilienceOptions resilience{};
  /// Observer-side divergence watchdog; fires stop the run loop early and
  /// are reported in DistRunResult::watchdog.
  WatchdogOptions watchdog{};
  /// Host-side wall-clock profiler (src/prof, docs/observability.md). Not
  /// owned; null (the default) keeps every timing hook an inlined null
  /// test. Must be constructed with one lane per rank
  /// (`prof::Profiler(P)`). The driver attaches it to the runtime for the
  /// whole run, wraps each solver->step() in a kStep span on the runtime
  /// lane, and brackets the run with the profiler's allocation window.
  /// Advisory only: host timings never feed back into the simulation, so
  /// iterates, traces, and deterministic bench fields are bit-identical
  /// with or without a profiler — except that when a tracer rides along
  /// too, the advisory `prof.*` gauges are additionally registered.
  prof::Profiler* profiler = nullptr;
};

/// Per-run series; index k = state after k parallel steps (index 0 = the
/// initial state). All cumulative except `active_ranks`.
struct DistRunResult {
  std::string method;
  int num_ranks = 0;
  index_t n = 0;
  std::string backend;   ///< execution backend the run used
  int num_threads = 1;   ///< threads the backend ran with
  /// Real wall-clock seconds of the solve loop (host time, NOT the machine
  /// model — that is `model_time`). This is what the backend knob changes.
  double wall_seconds = 0.0;

  /// Exact end-of-run CommStats totals (integers, deterministic across
  /// backends) — the quantities the bench `-json` records gate on.
  struct CommTotals {
    std::uint64_t msgs = 0;           ///< all (physical) messages sent
    std::uint64_t bytes = 0;          ///< all modeled bytes sent
    std::uint64_t msgs_solve = 0;     ///< MsgTag::kSolve messages
    std::uint64_t msgs_residual = 0;  ///< MsgTag::kResidual messages
    std::uint64_t msgs_other = 0;     ///< MsgTag::kOther messages
    /// Wire records carried (== msgs unless coalescing framed several
    /// records into one put; see wire/comm_plan.hpp).
    std::uint64_t msgs_logical = 0;
    std::uint64_t msgs_logical_solve = 0;
    std::uint64_t msgs_logical_residual = 0;
  };
  CommTotals comm_totals;

  std::vector<double> residual_norm;  ///< ‖r‖₂ (exact, observer-side)
  std::vector<double> model_time;     ///< modeled seconds, cumulative
  std::vector<double> comm_cost;      ///< total msgs / P, cumulative
  std::vector<double> solve_comm;     ///< solve-message cost, cumulative
  std::vector<double> res_comm;       ///< explicit-residual cost, cumulative
  std::vector<double> relaxations;    ///< row relaxations, cumulative
  std::vector<index_t> active_ranks;  ///< per step (size = #steps)
  std::vector<value_t> final_x;       ///< gathered iterate after the run
  /// Merged event log + metric totals when opt.trace.enabled, else null.
  /// Export with trace::write_jsonl / trace::write_chrome_trace.
  std::shared_ptr<const trace::TraceLog> trace_log;
  /// Fault/recovery totals iff a nonzero FaultPlan was attached.
  std::optional<FaultSummary> fault_summary;
  /// Async-delivery totals iff the run used the EventDriven policy.
  std::optional<AsyncTotals> async_totals;
  /// Two-tier hop totals iff a non-flat node topology was attached.
  std::optional<NodeTotals> node_totals;
  /// Watchdog outcome (default-constructed / not fired unless enabled).
  WatchdogReport watchdog;

  std::size_t steps_taken() const { return active_ranks.size(); }

  /// Summary at the first crossing of `target` (log10-interpolated,
  /// as in Table 2). nullopt = the paper's †.
  struct AtTarget {
    double steps = 0;
    double model_time = 0;
    double comm_cost = 0;
    double solve_comm = 0;
    double res_comm = 0;
    double relaxations_per_n = 0;
    double active_fraction = 0;  ///< mean over the steps up to the crossing
  };
  std::optional<AtTarget> at_target(double target) const;

  /// Table-4 style per-step means over the whole run.
  double mean_step_time() const;
  double mean_step_comm() const;
  double mean_active_fraction() const;
};

/// Build a solver (tests use this to poke at solver internals).
std::unique_ptr<DistStationarySolver> make_dist_solver(
    DistMethod method, const DistLayout& layout, simmpi::Runtime& rt,
    std::span<const value_t> b, std::span<const value_t> x0,
    const DistRunOptions& opt);

/// Partition + layout + run in one call (the bench harness entry point).
DistRunResult run_distributed(DistMethod method, const CsrMatrix& a,
                              const graph::Partition& partition,
                              std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const DistRunOptions& opt = {});

/// Run against a pre-built layout (reuse across methods — the benches run
/// BJ/PS/DS on the same partition, as the paper's scripts do).
DistRunResult run_distributed(DistMethod method, const DistLayout& layout,
                              std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const DistRunOptions& opt = {});

}  // namespace dsouth::dist
