#pragma once

/// \file solver_base.hpp
/// Common state and helpers for the distributed block solvers
/// (Algorithms 1–3 of the paper). Each solver advances one *parallel step*
/// per `step()` call; a step is one or two simmpi epochs depending on the
/// method.
///
/// SPMD structure: a step's work is decomposed into per-rank phases —
/// `rank_*`(RankContext&, p) member functions that touch only rank-p state
/// (x_[p], r_[p], scratch_[p], the solver's per-rank estimate arrays) plus
/// the rank-scoped runtime facade. `for_each_rank` hands those phases to
/// the solver's ExecutionBackend, so the same phase code runs sequentially
/// or on a thread pool with bit-identical results (the runtime merges
/// staged effects deterministically at the fence). Ranks never read each
/// other's arrays except through simmpi messages; the tests enforce the
/// convergence consequences of that discipline.

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dist/layout.hpp"
#include "simmpi/execution.hpp"
#include "simmpi/rank_context.hpp"
#include "simmpi/runtime.hpp"
#include "wire/comm_plan.hpp"

namespace dsouth::dist {

/// What one parallel step did (for the driver's records).
struct DistStepStats {
  index_t active_ranks = 0;  ///< ranks that relaxed their subdomain
  index_t relaxations = 0;   ///< rows relaxed (sum of active subdomains)
};

/// Setup-phase helper shared with greedy_schwarz: r_p -= A_pp x_p +
/// Σ_q A_pq x_q for rank p. Reads neighbor x directly (the paper's
/// artifact likewise distributes the assembled system before the solve
/// phase); per-rank, so a backend may run it for all ranks concurrently.
void subtract_a_times_x_local(const DistLayout& layout,
                              const std::vector<std::vector<value_t>>& x,
                              std::vector<value_t>& r_p, int p);

class DistStationarySolver {
 public:
  /// b and x0 are global vectors; they are scattered across ranks here.
  DistStationarySolver(const DistLayout& layout, simmpi::Runtime& rt,
                       std::span<const value_t> b,
                       std::span<const value_t> x0);
  virtual ~DistStationarySolver() = default;

  DistStationarySolver(const DistStationarySolver&) = delete;
  DistStationarySolver& operator=(const DistStationarySolver&) = delete;

  /// Advance one parallel step (including its fences).
  virtual DistStepStats step() = 0;
  virtual const char* name() const = 0;

  const DistLayout& layout() const { return *layout_; }
  simmpi::Runtime& runtime() { return *rt_; }

  /// Select the backend that executes the per-rank phases. Not owned; must
  /// outlive the solver. Defaults to a private sequential backend.
  void set_backend(simmpi::ExecutionBackend& backend) { backend_ = &backend; }
  const simmpi::ExecutionBackend& backend() const { return *backend_; }

  /// Toggle per-neighbor message coalescing (wire/comm_plan.hpp) on every
  /// rank's channel set. Call between steps only (the channels must hold
  /// no buffered records). Default off: direct mode is byte-identical to
  /// the legacy ad-hoc payload layouts.
  void set_message_coalescing(bool on);
  bool message_coalescing() const;

  /// Observer-side exact global residual norm (gathers local residuals;
  /// local residuals are exact by construction in all three methods).
  double global_residual_norm() const;

  /// Observer-side gather of the current iterate.
  std::vector<value_t> gather_x() const;

  std::span<const value_t> local_x(int p) const { return x_[p]; }
  std::span<const value_t> local_r(int p) const { return r_[p]; }

 protected:
  /// Run fn(ctx, p) for every rank p via the backend (one epoch phase).
  void for_each_rank(
      const std::function<void(simmpi::RankContext&, int)>& fn);

  /// Same, restricted to a rank subset (multicolor phases).
  void for_ranks(std::span<const int> ranks,
                 const std::function<void(simmpi::RankContext&, int)>& fn);

  /// Sum the per-rank step-stat slots into one record and reset them
  /// (call once at the end of step()).
  DistStepStats merge_rank_stats();

  /// Observability hooks (docs/observability.md). Both are inlined no-ops
  /// on untraced runs and never touch the simulation state, so enabling
  /// tracing cannot change results.
  ///
  /// Record that rank `ctx.rank()` relaxed `rows` rows this epoch: emits a
  /// kRelax event (a0 = rows, a1 = the rank's new local ‖r‖² — computed
  /// here, observer-side, only when tracing) and bumps the
  /// "solver.relaxed_rows"/"solver.rank_relaxations" counters.
  void trace_relax(simmpi::RankContext& ctx, index_t rows);

  /// Record the rank's absorb phase; call *before* ctx.consume(). Emits a
  /// kAbsorb event (a0 = messages in the window, a1 = total payload
  /// doubles) when the window is non-empty and bumps
  /// "solver.absorbed_msgs".
  void trace_absorb(simmpi::RankContext& ctx);

  /// r_p -= a_pq · Δx_q and charge the flops; dx is ordered by the
  /// neighbor's ghost_rows channel convention.
  void apply_incoming_delta(simmpi::RankContext& ctx, const NeighborBlock& nb,
                            std::span<const double> dx);

  const DistLayout* layout_;
  simmpi::Runtime* rt_;
  std::vector<std::vector<value_t>> x_, r_;
  /// Per-rank wire channels over the layout's CommPlan (channel index k ==
  /// neighbor index k). Each rank phase may touch only its own slot.
  std::vector<wire::ChannelSet> channels_;
  /// Per-rank reusable buffer (sized to the rank's subdomain) — each rank
  /// phase may use only its own slot.
  std::vector<std::vector<value_t>> scratch_;
  /// Per-rank step accounting, merged by merge_rank_stats().
  std::vector<DistStepStats> rank_stats_;
  /// Metric ids registered at construction when the runtime carries a
  /// tracer (trace::kInvalidMetric otherwise — all bumps no-op).
  trace::MetricId m_relaxed_rows_ = trace::kInvalidMetric;
  trace::MetricId m_rank_relaxations_ = trace::kInvalidMetric;
  trace::MetricId m_absorbed_msgs_ = trace::kInvalidMetric;

 private:
  std::unique_ptr<simmpi::ExecutionBackend> owned_backend_;
  simmpi::ExecutionBackend* backend_;
};

}  // namespace dsouth::dist
