#pragma once

/// \file solver_base.hpp
/// Common state and helpers for the three distributed block solvers
/// (Algorithms 1–3 of the paper). Each solver advances one *parallel step*
/// per `step()` call; a step is one or two simmpi epochs depending on the
/// method. All per-rank state is simulation-local: ranks never read each
/// other's arrays except through simmpi messages (the tests enforce the
/// convergence consequences of that discipline).

#include <span>
#include <vector>

#include "dist/layout.hpp"
#include "simmpi/runtime.hpp"

namespace dsouth::dist {

/// What one parallel step did (for the driver's records).
struct DistStepStats {
  index_t active_ranks = 0;  ///< ranks that relaxed their subdomain
  index_t relaxations = 0;   ///< rows relaxed (sum of active subdomains)
};

class DistStationarySolver {
 public:
  /// b and x0 are global vectors; they are scattered across ranks here.
  DistStationarySolver(const DistLayout& layout, simmpi::Runtime& rt,
                       std::span<const value_t> b,
                       std::span<const value_t> x0);
  virtual ~DistStationarySolver() = default;

  DistStationarySolver(const DistStationarySolver&) = delete;
  DistStationarySolver& operator=(const DistStationarySolver&) = delete;

  /// Advance one parallel step (including its fences).
  virtual DistStepStats step() = 0;
  virtual const char* name() const = 0;

  const DistLayout& layout() const { return *layout_; }
  simmpi::Runtime& runtime() { return *rt_; }

  /// Observer-side exact global residual norm (gathers local residuals;
  /// local residuals are exact by construction in all three methods).
  double global_residual_norm() const;

  /// Observer-side gather of the current iterate.
  std::vector<value_t> gather_x() const;

  std::span<const value_t> local_x(int p) const { return x_[p]; }
  std::span<const value_t> local_r(int p) const { return r_[p]; }

 protected:
  /// r_p -= a_pq · Δx_q and charge the flops; dx is ordered by the
  /// neighbor's ghost_rows channel convention.
  void apply_incoming_delta(int p, const NeighborBlock& nb,
                            std::span<const double> dx);

  const DistLayout* layout_;
  simmpi::Runtime* rt_;
  std::vector<std::vector<value_t>> x_, r_;
  std::vector<value_t> scratch_;  // reusable buffer (max subdomain size)
};

}  // namespace dsouth::dist
