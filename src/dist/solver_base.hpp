#pragma once

/// \file solver_base.hpp
/// Common state and helpers for the distributed block solvers
/// (Algorithms 1–3 of the paper). Each solver advances one *parallel step*
/// per `step()` call; a step is one or two simmpi epochs depending on the
/// method.
///
/// SPMD structure: a step's work is decomposed into per-rank phases —
/// `rank_*`(RankContext&, p) member functions that touch only rank-p state
/// (x_[p], r_[p], scratch_[p], the solver's per-rank estimate arrays) plus
/// the rank-scoped runtime facade. `for_each_rank` hands those phases to
/// the solver's ExecutionBackend, so the same phase code runs sequentially
/// or on a thread pool with bit-identical results (the runtime merges
/// staged effects deterministically at the fence). Ranks never read each
/// other's arrays except through simmpi messages; the tests enforce the
/// convergence consequences of that discipline.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dist/layout.hpp"
#include "simmpi/execution.hpp"
#include "simmpi/rank_context.hpp"
#include "simmpi/runtime.hpp"
#include "wire/comm_plan.hpp"

namespace dsouth::dist {

/// What one parallel step did (for the driver's records).
struct DistStepStats {
  index_t active_ranks = 0;  ///< ranks that relaxed their subdomain
  index_t relaxations = 0;   ///< rows relaxed (sum of active subdomains)
};

/// Solver-side fault recovery (docs/resilience.md). When enabled, every
/// message ships in a sequenced wire-v2 envelope
/// (ChannelSet::set_sequencing) and the Δx payload fields carry ABSOLUTE
/// boundary x values instead of deltas. The receiver keeps a per-channel
/// cache of the sender's boundary x and applies the difference, which
/// makes absorption idempotent (a duplicated message applies a zero
/// delta) and self-healing (the message after a drop carries the full
/// accumulated change). Duplicated, reordered, truncated, and
/// bit-corrupted payloads are rejected by sequence gating and the
/// envelope checksum; estimate staleness from dropped messages is bounded
/// by a periodic full-state refresh on the conditional-send solvers
/// (Parallel/Distributed Southwell).
struct ResilienceOptions {
  bool enabled = false;
  /// Refresh-resend period, in parallel steps: a rank that has not sent a
  /// full-state (x-bearing) message to a neighbor for this many steps
  /// resends one unconditionally, bounding how stale a neighbor's ghost
  /// cache and Γ estimates can become after message loss. 0 disables the
  /// refresh (sequence gating and absolute-x encoding stay active).
  /// Block Jacobi and Multicolor Block GS send full state on every relax
  /// turn, so the period only affects PS and DS.
  index_t refresh_period = 8;
};

/// Counters kept by the resilient receive/refresh paths (summed over
/// ranks by DistStationarySolver::resilience_stats).
struct ResilienceStats {
  std::uint64_t rejected_corrupt = 0;  ///< decode failures (checksum, ...)
  std::uint64_t rejected_stale = 0;    ///< duplicate / out-of-order seq
  std::uint64_t refreshes_sent = 0;    ///< proactive full-state resends
};

/// What a concrete solver needs from an elastic *repartition* recovery
/// (src/elastic, docs/resilience.md). Checkpoint/restore on an UNCHANGED
/// layout needs none of this — capture_state/restore_state round-trip
/// every field exactly. A repartition changes the layout, so per-neighbor
/// state cannot be carried over; the recovering driver constructs a fresh
/// solver from the restored global iterate, and this contract tells it
/// what that fresh construction re-derives and what is genuinely reset.
struct RecoveryContract {
  /// Residuals are rebuilt exactly from A, b and the restored iterate by
  /// the constructor's setup phase (true for every stationary solver
  /// here — local residuals are exact by construction).
  bool rebuilds_residual = true;
  /// Per-neighbor estimates (Γ, Γ̃, residual ghost layers) are re-seeded
  /// exactly by the constructor's setup exchange, so no estimate
  /// staleness survives a recovery (the Southwell methods).
  bool reseeds_estimates = false;
  /// The relaxation schedule restarts from its initial phase (MCBGS: the
  /// color rotation restarts at color 0). Convergence is unaffected; the
  /// sweep order is perturbed once.
  bool restarts_schedule = false;
  /// Monotonic protocol counters (DS corrections_sent / deferred_sends)
  /// restart at 0 in the fresh solver; the elastic driver accumulates
  /// them across generations for its report.
  bool restarts_counters = false;
};

/// Setup-phase helper shared with greedy_schwarz: r_p -= A_pp x_p +
/// Σ_q A_pq x_q for rank p. Reads neighbor x directly (the paper's
/// artifact likewise distributes the assembled system before the solve
/// phase); per-rank, so a backend may run it for all ranks concurrently.
void subtract_a_times_x_local(const DistLayout& layout,
                              const std::vector<std::vector<value_t>>& x,
                              std::vector<value_t>& r_p, int p);

class DistStationarySolver {
 public:
  /// b and x0 are global vectors; they are scattered across ranks here.
  DistStationarySolver(const DistLayout& layout, simmpi::Runtime& rt,
                       std::span<const value_t> b,
                       std::span<const value_t> x0);
  virtual ~DistStationarySolver() = default;

  DistStationarySolver(const DistStationarySolver&) = delete;
  DistStationarySolver& operator=(const DistStationarySolver&) = delete;

  /// Advance one parallel step (including its fences).
  ///
  /// Under a BulkSynchronous delivery policy this is the paper's stepping:
  /// one or two epochs with every message delivered at its closing fence.
  /// Under an EventDriven policy (async_mode()) every solver switches to
  /// single-epoch relax-on-arrival stepping: absorb whatever matured into
  /// the window, relax on the (possibly stale, staleness-bounded) state,
  /// fold any phase-B traffic into the same epoch, fence once.
  ///
  /// Non-virtual: the step schedule is a fixed phase table the base class
  /// drives through the stepping hooks below, so an external coordinator
  /// (batch.hpp) can interleave several solvers' phases inside shared
  /// epochs and a solo step() stays call-for-call what it always was.
  DistStepStats step();
  virtual const char* name() const = 0;

  /// Absorb every message currently sitting in the windows, without
  /// fencing. Asynchronous runs call this after Runtime::drain_delayed()
  /// so the final iterate and residuals reflect all in-flight traffic;
  /// bulk-synchronous steps never leave messages behind.
  void absorb_all();

  // --- Stepping hooks -----------------------------------------------------
  // The phase table step() executes, exposed so the batched multi-tenant
  // coordinator (batch.hpp) can run B solvers' phases inside SHARED epochs:
  //
  //   begin_step()
  //   bulk-synchronous:  for e in [0, step_epochs()):
  //                        for_each_rank(rank_send(e)); fence;
  //                        for_each_rank(rank_absorb)
  //   event-driven:      for_each_rank(rank_absorb; rank_async_send); fence
  //
  // Every hook preserves the SPMD discipline (rank phases touch only
  // rank-p state). Calling them outside step()/the coordinator's schedule
  // voids the byte-identity guarantees.

  /// Per-step bookkeeping that runs once, before any epoch (resilience
  /// step counter; DS advances its heartbeat clock, MCBGS its color).
  virtual void begin_step() { resil_begin_step(); }

  /// Number of bulk-synchronous epochs per parallel step (1 for Block
  /// Jacobi / Multicolor Block GS, 2 for the Southwell methods).
  virtual int step_epochs() const { return 1; }

  /// Rank p's send phase of epoch `e` (relax / residual-update / correct).
  /// A rank with nothing to do in this epoch (wrong color, criterion not
  /// met, feature disabled) returns without observable effect.
  virtual void rank_send(int e, simmpi::RankContext& ctx, int p) = 0;

  /// Rank p's fused send phase of an event-driven step (the absorb half is
  /// the shared rank_absorb, run first by the schedule).
  virtual void rank_async_send(simmpi::RankContext& ctx, int p) = 0;

  /// Rank p's absorb phase: dispatch every window message to
  /// absorb_payload by sender channel, trace, consume. Shared verbatim by
  /// all four solvers — only the per-record semantics differ.
  void rank_absorb(simmpi::RankContext& ctx, int p);

  /// Apply one received payload on channel (p, neighbor nbi). The payload
  /// is whatever the sender's ChannelSet shipped: a bare record, a
  /// coalesced frame, or a sequenced envelope — the solver's decode path
  /// handles all three. The batch coordinator calls this directly with
  /// tenant-frame bodies.
  virtual void absorb_payload(simmpi::RankContext& ctx, int p,
                              std::size_t nbi,
                              std::span<const double> payload) = 0;

  /// Sum the per-rank step-stat slots into one record and reset them
  /// (step() calls this last; the coordinator calls it per tenant).
  DistStepStats merge_rank_stats();

  /// Record the rank's absorb phase; call *before* ctx.consume(). Emits a
  /// kAbsorb event (a0 = messages in the window, a1 = total payload
  /// doubles) when the window is non-empty and bumps
  /// "solver.absorbed_msgs". Public for the coordinator's demux absorb.
  void trace_absorb(simmpi::RankContext& ctx);

  /// Rank p's wire channels (the coordinator toggles batch staging and
  /// ships the per-tenant buffers from here).
  wire::ChannelSet& channel(int p) { return channels_[static_cast<std::size_t>(p)]; }

  /// Toggle batch-staging mode (wire::ChannelSet::set_batch_staging) on
  /// every rank's channel set. Call between steps only.
  void set_batch_staging(bool on);
  // ------------------------------------------------------------------------

  const DistLayout& layout() const { return *layout_; }
  simmpi::Runtime& runtime() { return *rt_; }

  /// Select the backend that executes the per-rank phases. Not owned; must
  /// outlive the solver. Defaults to a private sequential backend.
  void set_backend(simmpi::ExecutionBackend& backend) { backend_ = &backend; }
  const simmpi::ExecutionBackend& backend() const { return *backend_; }

  /// Toggle per-neighbor message coalescing (wire/comm_plan.hpp) on every
  /// rank's channel set. Call between steps only (the channels must hold
  /// no buffered records). Default off: direct mode is byte-identical to
  /// the legacy ad-hoc payload layouts.
  void set_message_coalescing(bool on);
  bool message_coalescing() const;

  /// Enable solver-side fault recovery (see ResilienceOptions). Must be
  /// called before the first step() — the receiver's boundary-x caches are
  /// initialized from the current iterate, which both ends only agree on
  /// at setup. Mutually exclusive with message coalescing (sequenced
  /// envelopes wrap exactly one record). Virtual so solvers with
  /// incompatible extensions can reject the combination.
  virtual void set_resilience(const ResilienceOptions& opt);
  bool resilient() const { return resil_.enabled; }
  const ResilienceOptions& resilience() const { return resil_; }

  /// Totals of the resilient-path counters across ranks (zeros when
  /// resilience is off).
  ResilienceStats resilience_stats() const;

  // --- Checkpoint/restore (src/elastic) -----------------------------------

  /// Deterministic snapshot of every mutable solver field that survives a
  /// step boundary. Scratch buffers (scratch_, dz, per-sweep snapshots)
  /// and the per-step rank_stats_ slots are transient between steps and
  /// deliberately excluded. `extra` is the concrete solver's private
  /// state, serialized as a flat double stream whose layout only
  /// capture_extra/restore_extra of the same solver class on the same
  /// DistLayout understand (integers travel bit-cast, never rounded).
  struct SolverState {
    index_t resil_step_count = 0;
    std::vector<std::vector<value_t>> x;  ///< per-rank iterate
    std::vector<std::vector<value_t>> r;  ///< per-rank residual
    /// Per rank, per peer: the channel's next envelope sequence number
    /// (captured even when sequencing is off — zeros round-trip).
    std::vector<std::vector<std::uint64_t>> send_seq;
    // Resilient-mode caches (all empty when resilience is off).
    std::vector<std::vector<std::vector<value_t>>> ghost_x;
    std::vector<std::vector<std::uint64_t>> recv_min_seq;
    std::vector<std::vector<index_t>> last_send_step;
    std::vector<ResilienceStats> resil_stats;
    /// Concrete-solver extension (capture_extra/restore_extra).
    std::vector<double> extra;
  };

  /// Capture the solver's state between steps (no put phase in flight: the
  /// channels must hold no buffered records or unsealed envelopes).
  /// Restoring the result into a solver of the same class on the same
  /// layout — along with the matching simmpi::RuntimeState — resumes the
  /// run byte-identically (tests/test_elastic.cpp pins this across
  /// backends and feature combinations).
  SolverState capture_state() const;

  /// Inverse of capture_state. The solver must have the same class,
  /// layout, and feature configuration (resilience/coalescing) as the one
  /// that captured; mismatches are checked fatal, not recovered.
  void restore_state(const SolverState& state);

  /// What this solver needs from a repartition recovery (see
  /// RecoveryContract). The base default describes Block Jacobi.
  virtual RecoveryContract recovery_contract() const { return {}; }
  // ------------------------------------------------------------------------

  /// Observer-side exact global residual norm (gathers local residuals;
  /// local residuals are exact by construction in all three methods).
  double global_residual_norm() const;

  /// Observer-side gather of the current iterate.
  std::vector<value_t> gather_x() const;

  std::span<const value_t> local_x(int p) const { return x_[p]; }
  std::span<const value_t> local_r(int p) const { return r_[p]; }

 protected:
  /// True when the runtime's delivery policy is EventDriven — the cue for
  /// step() implementations to take their single-epoch async path.
  bool async_mode() const { return rt_->async_delivery(); }

  /// Run fn(ctx, p) for every rank p via the backend (one epoch phase).
  void for_each_rank(
      const std::function<void(simmpi::RankContext&, int)>& fn);

  /// Same, restricted to a rank subset (multicolor phases).
  void for_ranks(std::span<const int> ranks,
                 const std::function<void(simmpi::RankContext&, int)>& fn);

  /// Observability hook (docs/observability.md; trace_absorb above is its
  /// public sibling). An inlined no-op on untraced runs and never touches
  /// the simulation state, so enabling tracing cannot change results.
  ///
  /// Record that rank `ctx.rank()` relaxed `rows` rows this epoch: emits a
  /// kRelax event (a0 = rows, a1 = the rank's new local ‖r‖² — computed
  /// here, observer-side, only when tracing) and bumps the
  /// "solver.relaxed_rows"/"solver.rank_relaxations" counters.
  void trace_relax(simmpi::RankContext& ctx, index_t rows);

  /// Host-profiling span for one of rank p's solver phases (prof/prof.hpp;
  /// the trace_relax idiom: an inlined null test with no profiler
  /// attached, and never a feedback path into the simulation). Returned by
  /// value through guaranteed elision — bind it to a local:
  ///   const auto span = prof_phase(p, prof::PhaseId::kRelax);
  prof::ScopedPhase prof_phase(int p, prof::PhaseId phase) const {
    return prof::ScopedPhase(rt_->profiler(), p, phase);
  }

  /// Append the concrete solver's private mutable state to the checkpoint
  /// stream (capture_state). Default: stateless beyond the base fields
  /// (Block Jacobi). Implementations must write a layout-determined,
  /// fixed-order stream and bit-cast any integer fields.
  virtual void capture_extra(std::vector<double>& out) const {
    (void)out;
  }

  /// Inverse of capture_extra; `in` is exactly what capture_extra wrote.
  virtual void restore_extra(std::span<const double> in);

  /// r_p -= a_pq · Δx_q and charge the flops; dx is ordered by the
  /// neighbor's ghost_rows channel convention.
  void apply_incoming_delta(simmpi::RankContext& ctx, const NeighborBlock& nb,
                            std::span<const double> dx);

  // --- Resilient-mode helpers (no-ops / unused unless resilient()). Each
  // touches only rank-p slots, preserving the SPMD phase discipline.

  /// Bump the solver's internal step counter; every step() implementation
  /// calls this first (it also locks set_resilience).
  void resil_begin_step() { ++resil_step_count_; }

  /// Validate one received payload on channel (p, neighbor nbi): decode
  /// the wire-v2 envelope and gate on its sequence number. Returns the
  /// record body, or an empty span when the payload was rejected
  /// (corrupt/truncated/stale/duplicate — counted in resil_stats_[p]).
  std::span<const double> resil_accept(simmpi::RankContext& ctx, int p,
                                       std::size_t nbi,
                                       std::span<const double> payload);

  /// Absorb an absolute-boundary-x payload from neighbor nbi of rank p:
  /// apply dx = x_abs - cached ghost x to r_p and refresh the cache.
  /// Idempotent — reapplying the same x_abs is a zero delta.
  void resil_apply_boundary_x(simmpi::RankContext& ctx, int p,
                              std::size_t nbi,
                              std::span<const double> x_abs);

  /// Record that rank p sent a full-state (x-bearing) message to neighbor
  /// nbi this step — resets the channel's refresh clock.
  void resil_note_send(int p, std::size_t nbi);

  /// Same, for a proactive refresh (also counts refreshes_sent).
  void resil_note_refresh(simmpi::RankContext& ctx, int p, std::size_t nbi);

  /// True when rank p owes neighbor nbi a full-state refresh: no x-bearing
  /// message for >= refresh_period steps (and the period is nonzero).
  bool resil_refresh_due(int p, std::size_t nbi) const;

  const DistLayout* layout_;
  simmpi::Runtime* rt_;
  std::vector<std::vector<value_t>> x_, r_;
  /// Per-rank wire channels over the layout's CommPlan (channel index k ==
  /// neighbor index k). Each rank phase may touch only its own slot.
  std::vector<wire::ChannelSet> channels_;
  /// Per-rank reusable buffer (sized to the rank's subdomain) — each rank
  /// phase may use only its own slot.
  std::vector<std::vector<value_t>> scratch_;
  /// Per-rank step accounting, merged by merge_rank_stats().
  std::vector<DistStepStats> rank_stats_;
  /// Metric ids registered at construction when the runtime carries a
  /// tracer (trace::kInvalidMetric otherwise — all bumps no-op).
  trace::MetricId m_relaxed_rows_ = trace::kInvalidMetric;
  trace::MetricId m_rank_relaxations_ = trace::kInvalidMetric;
  trace::MetricId m_absorbed_msgs_ = trace::kInvalidMetric;

  // --- Resilient-mode state (sized by set_resilience; empty otherwise).
  ResilienceOptions resil_{};
  index_t resil_step_count_ = 0;
  /// Per rank, per neighbor: cached boundary x of that neighbor, aligned
  /// with NeighborBlock::ghost_rows (what the last accepted message said).
  std::vector<std::vector<std::vector<value_t>>> ghost_x_;
  /// Per rank, per neighbor: lowest acceptable envelope sequence number
  /// (last accepted + 1); anything below is a duplicate or stale.
  std::vector<std::vector<std::uint64_t>> recv_min_seq_;
  /// Per rank, per neighbor: step index of the last x-bearing send.
  std::vector<std::vector<index_t>> last_send_step_;
  /// Per-rank Δx scratch for resil_apply_boundary_x (sized to the rank's
  /// widest incoming channel so the absorb path never allocates).
  std::vector<std::vector<value_t>> resil_dx_;
  /// Per-rank counters (each rank phase bumps only its own slot).
  std::vector<ResilienceStats> resil_stats_;
  trace::MetricId m_resil_rejected_ = trace::kInvalidMetric;
  trace::MetricId m_resil_refreshes_ = trace::kInvalidMetric;

 private:
  std::unique_ptr<simmpi::ExecutionBackend> owned_backend_;
  simmpi::ExecutionBackend* backend_;
};

}  // namespace dsouth::dist
