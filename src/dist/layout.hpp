#pragma once

/// \file layout.hpp
/// Distributed data layout: how a global SPD matrix is split across ranks.
///
/// Given a matrix and a k-way partition (DESIGN.md: one subdomain per
/// simulated MPI rank, partition from our METIS-substitute), this computes
/// for every rank p:
///   - its global rows (ascending; the paper's δ_p offsets generalized to
///     non-contiguous row sets),
///   - the local diagonal block A_pp,
///   - per neighbor q: the coupling blocks and index lists that the solvers
///     need to exchange boundary updates and maintain residual ghost layers.
///
/// Index conventions for a neighbor pair (p, q):
///   ghost_rows — q's rows coupled to p, ascending global order. This set
///     is simultaneously (a) the support of p's residual ghost layer z_q,
///     (b) the rows whose Δx q sends to p, and (c) q's "boundary rows
///     w.r.t. p" on the sending side — so one ordering serves both ends of
///     the channel and messages need no index payload.
///   a_pq — |rows_p| × |ghost_rows| block: p's rows vs. q's coupled rows.
///     Applying an incoming update is r_p -= a_pq · Δx_q.
///   a_qp — |ghost_rows| × |rows_p| block (= a_pqᵀ for symmetric A): lets p
///     update its ghost layer z_q -= a_qp · Δx_p with purely local data
///     ("the process responsible for row i stores column i of A", §3).
///   send_rows_local — p's rows coupled to q (local indices): the Δx and
///     boundary-residual values p sends to q, in exactly the order of q's
///     ghost_rows list for p.

#include <optional>
#include <vector>

#include "graph/partition.hpp"
#include "simmpi/node_topology.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"
#include "wire/comm_plan.hpp"

namespace dsouth::dist {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

struct NeighborBlock {
  int rank = -1;
  std::vector<index_t> ghost_rows;       ///< q's coupled rows (global, asc)
  std::vector<index_t> send_rows_local;  ///< p's coupled rows (local, asc)
  CsrMatrix a_pq;  ///< rows_p × ghost_rows coupling block
  CsrMatrix a_qp;  ///< ghost_rows × rows_p coupling block (a_pqᵀ)
};

struct RankData {
  std::vector<index_t> rows;  ///< global rows owned (ascending)
  CsrMatrix a_local;          ///< diagonal block (local indices)
  std::vector<NeighborBlock> neighbors;  ///< ascending by rank id

  index_t num_rows() const { return static_cast<index_t>(rows.size()); }
  /// Index into `neighbors` for a given rank id, or -1.
  int neighbor_index(int rank) const;
};

class DistLayout {
 public:
  /// Requires a square, structurally symmetric matrix and a valid partition
  /// of its rows. Empty parts are allowed (their ranks just idle).
  DistLayout(const CsrMatrix& a, const graph::Partition& partition);

  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  index_t global_rows() const { return n_; }
  const RankData& rank(int p) const;

  int rank_of_row(index_t global_row) const;
  index_t local_of_row(index_t global_row) const;

  /// Scatter a global vector into per-rank local vectors.
  std::vector<std::vector<value_t>> scatter(
      std::span<const value_t> global) const;

  /// Gather per-rank local vectors back into a global vector.
  std::vector<value_t> gather(
      const std::vector<std::vector<value_t>>& local) const;

  /// Structural self-check (used by tests): block dimensions, mirrored
  /// ghost/send lists, and a_qp == a_pqᵀ.
  bool validate(const CsrMatrix& a) const;

  /// The wire-level communication plan precomputed from the neighbor
  /// blocks: for each rank, one Peer per NeighborBlock (same order), with
  /// send_width = |send_rows_local| (values shipped to that neighbor) and
  /// recv_width = |ghost_rows| (values arriving from it). The two differ
  /// in general — the channel is directed.
  const wire::CommPlan& comm_plan() const { return plan_; }

  /// Attach a two-level node topology (simmpi/node_topology.hpp) and
  /// precompute the node-level view of the comm plan — the static
  /// per-node-pair channel lists forward frames index by
  /// (wire::NodeCommPlan). The topology must cover exactly this layout's
  /// ranks. Attaching replaces any previous topology; the driver calls
  /// this once per run configuration (dist/driver.hpp).
  void set_node_topology(simmpi::NodeTopology topo);

  /// The attached topology, or nullptr when the layout is single-level.
  const simmpi::NodeTopology* node_topology() const {
    return node_topo_.has_value() ? &*node_topo_ : nullptr;
  }

  /// The node-level comm plan (valid only while node_topology() is
  /// attached — checked).
  const wire::NodeCommPlan& node_comm_plan() const;

 private:
  index_t n_ = 0;
  std::vector<RankData> ranks_;
  wire::CommPlan plan_;
  std::optional<simmpi::NodeTopology> node_topo_;
  wire::NodeCommPlan node_plan_;
  std::vector<int> rank_of_;       // global row -> rank
  std::vector<index_t> local_of_;  // global row -> local index
};

}  // namespace dsouth::dist
