#pragma once

/// \file distributed_southwell.hpp
/// Distributed Southwell — the paper's contribution (§3, Algorithm 3).
///
/// Premise: neighbors' residual norms need not be known exactly to decide
/// who relaxes. Each rank p therefore keeps, per neighbor q:
///
///   z_q      — residual ghost layer: p's estimates of r_q at q's rows
///              coupled to p. When p relaxes, p updates z_q with purely
///              local data (the a_qp block), so Γ improves WITHOUT
///              communication; when q sends, z_q is overwritten exactly.
///   Γ[q]     — estimate of ‖r_q‖² (base value from q's last message,
///              locally adjusted through z_q's changes).
///   Γ̃[q]    — q's estimate of ‖r_p‖², tracked because every message
///              carries the sender's estimate of the receiver's norm.
///
/// Parallel step = two epochs:
///   Epoch A — ranks whose ‖r_p‖² ≥ max Γ relax; solve message to each
///     neighbor q carries (Δx boundary, exact boundary residuals of p,
///     new ‖r_p‖², Γ[q]²).
///   Epoch B — deadlock avoidance: if ‖r_p‖² < Γ̃[q]², q overestimates p
///     and might wait on p forever, so p sends an explicit residual update
///     — and ONLY then. This "only when necessary" rule is what makes
///     Distributed Southwell's communication a fraction of Parallel
///     Southwell's (paper Tables 2-3).

#include "dist/solver_base.hpp"

namespace dsouth::dist {

struct DistributedSouthwellOptions {
  /// Disable Epoch-B corrections (ablation; risks the §2.4 stall).
  bool enable_corrections = true;
  /// Disable the local ghost-layer estimate updates on relax (ablation;
  /// Γ then only refreshes when messages arrive, so estimates are staler
  /// and more corrections fire).
  bool enable_local_estimates = true;
  /// Extension (paper §5, the Ref. [8] "asynchronous variable threshold"
  /// direction): defer a solve message until the accumulated boundary Δx
  /// satisfies ‖Δx_acc‖₂ > send_threshold · ‖r_p‖₂. 0 sends always
  /// (Algorithm 3 exactly). With deferral, neighbor residuals are stale by
  /// the unsent contributions until the flush, so the local-residual
  /// exactness invariant holds only at flush boundaries — the
  /// ablation/extension bench quantifies the comm-vs-convergence trade.
  double send_threshold = 0.0;
  /// Robustness hardening for weakly-ordered delivery (simmpi
  /// DeliveryModel): every `heartbeat_period` parallel steps, ranks with a
  /// nonzero residual broadcast an explicit residual update regardless of
  /// the Γ̃ condition. Under message reordering the Γ̃ bookkeeping can
  /// become permanently wrong (a neighbor's overestimate that the owner
  /// believes was already corrected), which livelocks plain Algorithm 3;
  /// the heartbeat bounds that staleness. 0 disables (the paper's exact
  /// algorithm; safe under the ordered bulk-synchronous default).
  index_t heartbeat_period = 0;
};

class DistributedSouthwell final : public DistStationarySolver {
 public:
  DistributedSouthwell(const DistLayout& layout, simmpi::Runtime& rt,
                       std::span<const value_t> b,
                       std::span<const value_t> x0,
                       const DistributedSouthwellOptions& opt = {});

  const char* name() const override { return "DistributedSouthwell"; }

  /// Rejects the combination with send_threshold: deferral accumulates
  /// unsent Δx, which contradicts the resilient absolute-x encoding
  /// (every message must carry the full boundary state).
  void set_resilience(const ResilienceOptions& opt) override;

  /// Explicit residual-update messages sent so far (observer convenience;
  /// also available from the runtime's per-tag stats).
  std::uint64_t corrections_sent() const;

  // Stepping hooks (solver_base.hpp): begin_step advances the heartbeat
  // clock (epoch A never reads it, so the pre-epoch advance matches the
  // old between-epochs one); epoch 0 relaxes, epoch 1 corrects.
  int step_epochs() const override { return 2; }
  void begin_step() override;
  void rank_send(int e, simmpi::RankContext& ctx, int p) override;
  void rank_async_send(simmpi::RankContext& ctx, int p) override;
  void absorb_payload(simmpi::RankContext& ctx, int p, std::size_t nbi,
                      std::span<const double> payload) override;

  /// Repartition recovery re-seeds Γ/Γ̃/z exactly (setup exchange) and
  /// restarts the correction/deferral counters.
  RecoveryContract recovery_contract() const override {
    RecoveryContract c;
    c.reseeds_estimates = true;
    c.restarts_counters = true;
    return c;
  }

 protected:
  // Checkpoint stream: step_count, heartbeat, then per rank — the two
  // protocol counters, Γ², Γ̃², the z ghost layers, and (send_threshold
  // runs only) the pending Δx accumulators.
  void capture_extra(std::vector<double>& out) const override;
  void restore_extra(std::span<const double> in) override;

 private:
  // Wire records (encodings in wire/wire.hpp; nb = directed channel width):
  //   SOLVE p->q: SolveUpdate{norm2 = new ‖r_p‖², gamma2 = Γ_p[q]²,
  //               dx = boundary Δx, rb = exact r_p boundary values}.
  //   RES   p->q: Correction{norm2 = ‖r_p‖², gamma2 = Γ_p[q]²,
  //               rb = exact r_p boundary values}.
  void rank_relax(simmpi::RankContext& ctx, int p);
  void rank_correct(simmpi::RankContext& ctx, int p, bool heartbeat);

  DistributedSouthwellOptions opt_;
  std::vector<std::vector<value_t>> gamma2_;   // per rank/neighbor: ‖r_q‖² est
  std::vector<std::vector<value_t>> gtilde2_;  // per rank/neighbor: their est of me
  std::vector<std::vector<std::vector<value_t>>> ghost_;  // z_q layers
  // Per-rank Δz scratch for the local ghost-layer updates (reused across
  // neighbors and steps so the relax hot path never allocates).
  std::vector<std::vector<value_t>> dz_scratch_;
  // send_threshold extension: per rank/neighbor accumulated unsent Δx
  // (aligned with send_rows_local).
  std::vector<std::vector<std::vector<value_t>>> pending_dx_;
  // Per-rank counters (each rank phase bumps only its own slot).
  std::vector<std::uint64_t> corrections_sent_, deferred_sends_;
  // Observability metrics (kInvalidMetric when tracing is off).
  trace::MetricId m_corrections_sent_ = trace::kInvalidMetric;
  trace::MetricId m_deferred_sends_ = trace::kInvalidMetric;
  index_t step_count_ = 0;
  bool heartbeat_ = false;  // this step's heartbeat flag (set by begin_step)

 public:
  std::uint64_t deferred_sends() const;
};

}  // namespace dsouth::dist
