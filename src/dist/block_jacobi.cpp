#include "dist/block_jacobi.hpp"

#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

BlockJacobi::BlockJacobi(const DistLayout& layout, simmpi::Runtime& rt,
                         std::span<const value_t> b,
                         std::span<const value_t> x0)
    : DistStationarySolver(layout, rt, b, x0) {
  x_before_.resize(static_cast<std::size_t>(layout.num_ranks()));
}

void BlockJacobi::rank_relax(simmpi::RankContext& ctx, int p) {
  const auto prof_relax = prof_phase(p, prof::PhaseId::kRelax);
  const RankData& rd = layout_->rank(p);
  if (rd.num_rows() == 0) return;
  const auto up = static_cast<std::size_t>(p);
  auto& xp = x_[up];
  auto& rp = r_[up];
  x_before_[up] = xp;  // snapshot for Δx
  const double flops = local_gauss_seidel_sweep(rd.a_local, xp, rp);
  ctx.add_flops(flops);
  ++rank_stats_[up].active_ranks;
  rank_stats_[up].relaxations += rd.num_rows();
  trace_relax(ctx, rd.num_rows());
  const auto prof_encode = prof_phase(p, prof::PhaseId::kEncode);
  const auto& x_old = x_before_[up];
  auto& ch = channels_[up];
  for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
    const auto& nb = rd.neighbors[k];
    auto rec = ch.open(ctx, k, wire::RecordType::kGhostDelta);
    for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
      const auto li = static_cast<std::size_t>(nb.send_rows_local[s]);
      // Resilient mode ships absolute boundary x (self-healing across
      // message loss — solver_base.hpp); default mode ships the delta.
      rec.dx[s] = resilient() ? xp[li] : xp[li] - x_old[li];
    }
  }
  ch.flush(ctx);
}

void BlockJacobi::rank_absorb(simmpi::RankContext& ctx, int p) {
  const auto prof_absorb = prof_phase(p, prof::PhaseId::kAbsorb);
  const RankData& rd = layout_->rank(p);
  for (const auto& msg : ctx.window()) {
    const int nbi = rd.neighbor_index(msg.source);
    DSOUTH_CHECK_MSG(nbi >= 0, "message from non-neighbor " << msg.source);
    const auto unbi = static_cast<std::size_t>(nbi);
    const auto& nb = rd.neighbors[unbi];
    if (resilient()) {
      const auto body = resil_accept(ctx, p, unbi, msg.payload);
      if (body.empty()) continue;
      const auto rec =
          wire::decode_record(wire::Family::kDelta, body, nb.ghost_rows.size());
      resil_apply_boundary_x(ctx, p, unbi, rec.dx);
      continue;
    }
    wire::for_each_record(wire::Family::kDelta, msg.payload,
                          nb.ghost_rows.size(),
                          [&](const wire::Record& rec) {
                            apply_incoming_delta(ctx, nb, rec.dx);
                          });
  }
  trace_absorb(ctx);
  ctx.consume();
}

void BlockJacobi::absorb_all() {
  for_each_rank([this](simmpi::RankContext& ctx, int p) {
    rank_absorb(ctx, p);
  });
}

DistStepStats BlockJacobi::step() {
  resil_begin_step();
  if (async_mode()) {
    // Relax-on-arrival: absorb whatever matured at earlier fences, relax
    // on that (staleness-bounded) state, fence once. Messages sent here
    // land whenever the delivery policy's virtual clock says they do.
    for_each_rank([this](simmpi::RankContext& ctx, int p) {
      rank_absorb(ctx, p);
      rank_relax(ctx, p);
    });
    rt_->fence();
    return merge_rank_stats();
  }

  // Relax everywhere and write boundary updates.
  for_each_rank([this](simmpi::RankContext& ctx, int p) {
    rank_relax(ctx, p);
  });
  rt_->fence();

  // Absorb neighbor updates.
  for_each_rank([this](simmpi::RankContext& ctx, int p) {
    rank_absorb(ctx, p);
  });
  return merge_rank_stats();
}

}  // namespace dsouth::dist
