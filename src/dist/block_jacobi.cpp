#include "dist/block_jacobi.hpp"

#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

BlockJacobi::BlockJacobi(const DistLayout& layout, simmpi::Runtime& rt,
                         std::span<const value_t> b,
                         std::span<const value_t> x0)
    : DistStationarySolver(layout, rt, b, x0) {
  x_before_.resize(static_cast<std::size_t>(layout.num_ranks()));
}

DistStepStats BlockJacobi::step() {
  DistStepStats stats;
  const int nranks = layout_->num_ranks();

  // Relax everywhere and write boundary updates.
  std::vector<double> payload;
  for (int p = 0; p < nranks; ++p) {
    const RankData& rd = layout_->rank(p);
    if (rd.num_rows() == 0) continue;
    auto& xp = x_[static_cast<std::size_t>(p)];
    auto& rp = r_[static_cast<std::size_t>(p)];
    x_before_[static_cast<std::size_t>(p)] = xp;  // snapshot for Δx
    const double flops = local_gauss_seidel_sweep(rd.a_local, xp, rp);
    rt_->add_flops(p, flops);
    ++stats.active_ranks;
    stats.relaxations += rd.num_rows();
    const auto& x_old = x_before_[static_cast<std::size_t>(p)];
    for (const auto& nb : rd.neighbors) {
      payload.clear();
      payload.reserve(nb.send_rows_local.size());
      for (index_t li : nb.send_rows_local) {
        payload.push_back(xp[static_cast<std::size_t>(li)] -
                          x_old[static_cast<std::size_t>(li)]);
      }
      rt_->put(p, nb.rank, simmpi::MsgTag::kSolve, payload);
    }
  }
  rt_->fence();

  // Absorb neighbor updates.
  for (int p = 0; p < nranks; ++p) {
    const RankData& rd = layout_->rank(p);
    for (const auto& msg : rt_->window(p)) {
      const int nbi = rd.neighbor_index(msg.source);
      DSOUTH_CHECK_MSG(nbi >= 0, "message from non-neighbor " << msg.source);
      apply_incoming_delta(p, rd.neighbors[static_cast<std::size_t>(nbi)],
                           msg.payload);
    }
    rt_->consume(p);
  }
  return stats;
}

}  // namespace dsouth::dist
