#include "dist/block_jacobi.hpp"

#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

BlockJacobi::BlockJacobi(const DistLayout& layout, simmpi::Runtime& rt,
                         std::span<const value_t> b,
                         std::span<const value_t> x0)
    : DistStationarySolver(layout, rt, b, x0) {
  x_before_.resize(static_cast<std::size_t>(layout.num_ranks()));
}

void BlockJacobi::rank_relax(simmpi::RankContext& ctx, int p) {
  const auto prof_relax = prof_phase(p, prof::PhaseId::kRelax);
  const RankData& rd = layout_->rank(p);
  if (rd.num_rows() == 0) return;
  const auto up = static_cast<std::size_t>(p);
  auto& xp = x_[up];
  auto& rp = r_[up];
  x_before_[up] = xp;  // snapshot for Δx
  const double flops = local_gauss_seidel_sweep(rd.a_local, xp, rp);
  ctx.add_flops(flops);
  ++rank_stats_[up].active_ranks;
  rank_stats_[up].relaxations += rd.num_rows();
  trace_relax(ctx, rd.num_rows());
  const auto prof_encode = prof_phase(p, prof::PhaseId::kEncode);
  const auto& x_old = x_before_[up];
  auto& ch = channels_[up];
  for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
    const auto& nb = rd.neighbors[k];
    auto rec = ch.open(ctx, k, wire::RecordType::kGhostDelta);
    for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
      const auto li = static_cast<std::size_t>(nb.send_rows_local[s]);
      // Resilient mode ships absolute boundary x (self-healing across
      // message loss — solver_base.hpp); default mode ships the delta.
      rec.dx[s] = resilient() ? xp[li] : xp[li] - x_old[li];
    }
  }
  ch.flush(ctx);
}

void BlockJacobi::absorb_payload(simmpi::RankContext& ctx, int p,
                                 std::size_t nbi,
                                 std::span<const double> payload) {
  const auto& nb = layout_->rank(p).neighbors[nbi];
  if (resilient()) {
    const auto body = resil_accept(ctx, p, nbi, payload);
    if (body.empty()) return;
    const auto rec =
        wire::decode_record(wire::Family::kDelta, body, nb.ghost_rows.size());
    resil_apply_boundary_x(ctx, p, nbi, rec.dx);
    return;
  }
  wire::for_each_record(wire::Family::kDelta, payload, nb.ghost_rows.size(),
                        [&](const wire::Record& rec) {
                          apply_incoming_delta(ctx, nb, rec.dx);
                        });
}

void BlockJacobi::rank_send(int /*e*/, simmpi::RankContext& ctx, int p) {
  rank_relax(ctx, p);
}

void BlockJacobi::rank_async_send(simmpi::RankContext& ctx, int p) {
  rank_relax(ctx, p);
}

}  // namespace dsouth::dist
