#include "dist/driver.hpp"

#include <cmath>

#include "dist/block_jacobi.hpp"
#include "dist/multicolor_block_gs.hpp"
#include "dist/parallel_southwell.hpp"
#include "simmpi/delivery.hpp"
#include "util/error.hpp"
#include "util/interp.hpp"
#include "util/stopwatch.hpp"

namespace dsouth::dist {

const char* method_name(DistMethod m) {
  switch (m) {
    case DistMethod::kBlockJacobi:
      return "BlockJacobi";
    case DistMethod::kParallelSouthwell:
      return "ParallelSouthwell";
    case DistMethod::kDistributedSouthwell:
      return "DistributedSouthwell";
    case DistMethod::kMulticolorBlockGs:
      return "MulticolorBlockGs";
  }
  return "?";
}

const char* method_abbrev(DistMethod m) {
  switch (m) {
    case DistMethod::kBlockJacobi:
      return "BJ";
    case DistMethod::kParallelSouthwell:
      return "PS";
    case DistMethod::kDistributedSouthwell:
      return "DS";
    case DistMethod::kMulticolorBlockGs:
      return "MCBGS";
  }
  return "?";
}

std::optional<DistRunResult::AtTarget> DistRunResult::at_target(
    double target) const {
  auto crossing = util::first_crossing_log10(residual_norm, target);
  if (!crossing) return std::nullopt;
  AtTarget out;
  out.steps = *crossing;
  out.model_time = util::interpolate_series(model_time, *crossing);
  out.comm_cost = util::interpolate_series(comm_cost, *crossing);
  out.solve_comm = util::interpolate_series(solve_comm, *crossing);
  out.res_comm = util::interpolate_series(res_comm, *crossing);
  out.relaxations_per_n =
      util::interpolate_series(relaxations, *crossing) /
      static_cast<double>(n);
  // Mean active fraction over the steps leading to the crossing.
  const auto upto = std::min<std::size_t>(
      active_ranks.size(),
      static_cast<std::size_t>(std::ceil(std::max(1.0, *crossing))));
  double sum = 0.0;
  for (std::size_t k = 0; k < upto; ++k) {
    sum += static_cast<double>(active_ranks[k]);
  }
  out.active_fraction =
      upto == 0 ? 0.0
                : sum / (static_cast<double>(upto) *
                         static_cast<double>(num_ranks));
  return out;
}

double DistRunResult::mean_step_time() const {
  if (steps_taken() == 0) return 0.0;
  return model_time.back() / static_cast<double>(steps_taken());
}

double DistRunResult::mean_step_comm() const {
  if (steps_taken() == 0) return 0.0;
  return comm_cost.back() / static_cast<double>(steps_taken());
}

double DistRunResult::mean_active_fraction() const {
  if (steps_taken() == 0) return 0.0;
  double sum = 0.0;
  for (index_t a : active_ranks) sum += static_cast<double>(a);
  return sum / (static_cast<double>(steps_taken()) *
                static_cast<double>(num_ranks));
}

std::unique_ptr<DistStationarySolver> make_dist_solver(
    DistMethod method, const DistLayout& layout, simmpi::Runtime& rt,
    std::span<const value_t> b, std::span<const value_t> x0,
    const DistRunOptions& opt) {
  switch (method) {
    case DistMethod::kBlockJacobi:
      return std::make_unique<BlockJacobi>(layout, rt, b, x0);
    case DistMethod::kParallelSouthwell:
      return std::make_unique<ParallelSouthwell>(
          layout, rt, b, x0, opt.ps_explicit_residual_updates);
    case DistMethod::kDistributedSouthwell:
      return std::make_unique<DistributedSouthwell>(layout, rt, b, x0,
                                                    opt.ds);
    case DistMethod::kMulticolorBlockGs:
      return std::make_unique<MulticolorBlockGs>(layout, rt, b, x0);
  }
  DSOUTH_CHECK(false);
  return nullptr;
}

DistRunResult run_distributed(DistMethod method, const DistLayout& layout,
                              std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const DistRunOptions& opt) {
  simmpi::Runtime rt(layout.num_ranks(), opt.machine, opt.delivery);
  // The delivery policy must be attached before the tracer (so the async
  // metrics register) and before the solver (so async_mode() is stable
  // from construction on).
  std::unique_ptr<simmpi::EventDrivenPolicy> async_policy;
  if (opt.async) {
    simmpi::EventDrivenOptions eo;
    eo.seed = opt.async_seed;
    eo.min_latency_epochs = opt.async_min_latency;
    eo.max_latency_epochs = opt.async_max_latency;
    eo.max_staleness = opt.max_staleness;
    async_policy = std::make_unique<simmpi::EventDrivenPolicy>(eo);
    rt.set_delivery_policy(async_policy.get());
  }
  // Node-aware topology. Run options take precedence over a topology
  // already attached to the layout; a locally-built topology must outlive
  // the runtime, hence the function-scope optional. Flat topologies
  // degenerate to "detached" inside the runtime, so attaching one here is
  // harmless (and byte-identical to not attaching).
  std::optional<simmpi::NodeTopology> run_topo;
  const simmpi::NodeTopology* topo = layout.node_topology();
  if (!opt.node_map.empty()) {
    run_topo.emplace(simmpi::NodeTopology::explicit_map(opt.node_map));
    topo = &*run_topo;
  } else if (opt.ranks_per_node > 0) {
    run_topo.emplace(simmpi::NodeTopology::ranks_per_node(
        layout.num_ranks(), opt.ranks_per_node));
    topo = &*run_topo;
  } else if (opt.num_nodes > 0) {
    const int p = layout.num_ranks();
    run_topo.emplace(simmpi::NodeTopology::ranks_per_node(
        p, (p + opt.num_nodes - 1) / opt.num_nodes));
    topo = &*run_topo;
  }
  if (topo) {
    simmpi::NodeRoutingOptions nro;
    nro.route_via_leaders = opt.node_route;
    if (opt.node_route) {
      // The runtime only needs the dense channel-count matrix (to size
      // forward-frame bitmaps); the full NodeCommPlan stays a wire-layer
      // object.
      nro.pair_channel_counts =
          wire::NodeCommPlan(layout.comm_plan(), *topo).pair_channel_counts();
    }
    rt.set_node_topology(topo, std::move(nro));
  }
  // The tracer must be attached before the solver is constructed so solver
  // ctors can register their metrics.
  std::unique_ptr<trace::Tracer> tracer;
  if (opt.trace.enabled) {
    tracer = std::make_unique<trace::Tracer>(layout.num_ranks(), opt.trace);
    rt.set_tracer(tracer.get());
  }
  // Host profiling is attach-by-pointer like the tracer, but inverted:
  // the tracer records what the simulation *modeled*, the profiler records
  // what the host *spent*, and nothing it measures feeds back in.
  if (opt.profiler) rt.set_profiler(opt.profiler);
  // A fault schedule is attached only for a nonzero plan, so the default
  // path stays byte-identical to a fault-free build (no extra RNG draws,
  // no extra metrics).
  std::unique_ptr<faults::FaultSchedule> fault_schedule;
  if (opt.faults.any()) {
    fault_schedule =
        std::make_unique<faults::FaultSchedule>(opt.faults, layout.num_ranks());
    rt.set_fault_schedule(fault_schedule.get());
  }
  auto backend = simmpi::make_backend(opt.backend, opt.num_threads);
  auto solver = make_dist_solver(method, layout, rt, b, x0, opt);
  solver->set_backend(*backend);
  // Async delivery forces the resilient receive path: maturation is
  // out-of-order by construction, and the seq-gated absolute-x encoding is
  // what keeps ghost caches and DS's Γ̃ bookkeeping correct under it.
  ResilienceOptions resilience = opt.resilience;
  if (opt.async) resilience.enabled = true;
  DSOUTH_CHECK_MSG(!(resilience.enabled && opt.coalesce_messages),
                   "resilience and message coalescing are incompatible");
  if (opt.coalesce_messages) solver->set_message_coalescing(true);
  if (resilience.enabled) solver->set_resilience(resilience);

  DistRunResult result;
  result.method = method_name(method);
  result.num_ranks = layout.num_ranks();
  result.n = layout.global_rows();
  result.backend = backend->name();
  result.num_threads = backend->num_threads();

  auto record_state = [&] {
    result.residual_norm.push_back(solver->global_residual_norm());
    result.model_time.push_back(rt.model_time_seconds());
    result.comm_cost.push_back(rt.stats().comm_cost());
    result.solve_comm.push_back(rt.stats().comm_cost(simmpi::MsgTag::kSolve));
    result.res_comm.push_back(rt.stats().comm_cost(simmpi::MsgTag::kResidual));
    result.relaxations.push_back(result.relaxations.empty()
                                     ? 0.0
                                     : result.relaxations.back());
  };
  record_state();

  index_t total_relax = 0;
  const double r0 = result.residual_norm.front();
  double best_rn = r0;
  index_t steps_since_best = 0;
  if (opt.profiler) opt.profiler->begin_alloc_window();
  for (index_t k = 0; k < opt.max_parallel_steps; ++k) {
    // Time the parallel steps only — the observer-side recording below is
    // backend-independent bookkeeping.
    util::Stopwatch wall;
    const DistStepStats stats = [&] {
      const prof::ScopedPhase prof_step(opt.profiler, layout.num_ranks(),
                                        prof::PhaseId::kStep);
      return solver->step();
    }();
    result.wall_seconds += wall.seconds();
    total_relax += stats.relaxations;
    result.active_ranks.push_back(stats.active_ranks);
    record_state();
    result.relaxations.back() = static_cast<double>(total_relax);
    const double rn = result.residual_norm.back();
    if (opt.stop_at_residual > 0.0 && rn <= opt.stop_at_residual) break;
    if (opt.divergence_abort > 0.0 && rn >= opt.divergence_abort) break;
    if (opt.watchdog.enabled) {
      // Observer-side divergence watchdog: a faulted run stops with a
      // report instead of hanging or overflowing.
      if (!std::isfinite(rn)) {
        result.watchdog = {true, "non-finite residual", k + 1};
        break;
      }
      if (rn > opt.watchdog.growth_factor * r0) {
        result.watchdog = {true, "residual exceeded growth_factor x initial",
                           k + 1};
        break;
      }
      if (rn < best_rn) {
        best_rn = rn;
        steps_since_best = 0;
      } else if (opt.watchdog.stall_steps > 0 &&
                 ++steps_since_best >= opt.watchdog.stall_steps) {
        result.watchdog = {true, "residual stalled", k + 1};
        break;
      }
    }
  }
  if (rt.async_delivery()) {
    // Deliver everything still maturing and fold it into the iterate so
    // final_x and the totals below describe a fully-drained run. (Gated on
    // the runtime, not opt.async: a staleness-0 policy degenerates to
    // bulk-synchronous delivery and must add nothing to the trace.)
    rt.drain_delayed();
    solver->absorb_all();
  }
  if (opt.profiler) opt.profiler->end_alloc_window();
  result.final_x = solver->gather_x();
  const simmpi::CommStats& cs = rt.stats();
  result.comm_totals.msgs = cs.total_messages();
  result.comm_totals.bytes = cs.total_bytes();
  result.comm_totals.msgs_solve = cs.total_messages(simmpi::MsgTag::kSolve);
  result.comm_totals.msgs_residual =
      cs.total_messages(simmpi::MsgTag::kResidual);
  result.comm_totals.msgs_other = cs.total_messages(simmpi::MsgTag::kOther);
  result.comm_totals.msgs_logical = cs.logical_messages();
  result.comm_totals.msgs_logical_solve =
      cs.logical_messages(simmpi::MsgTag::kSolve);
  result.comm_totals.msgs_logical_residual =
      cs.logical_messages(simmpi::MsgTag::kResidual);
  if (fault_schedule) {
    FaultSummary fs;
    fs.msgs_dropped = cs.dropped_messages();
    fs.msgs_duplicated = cs.duplicated_messages();
    fs.msgs_corrupted = cs.corrupted_messages();
    const ResilienceStats rs = solver->resilience_stats();
    fs.rejected_corrupt = rs.rejected_corrupt;
    fs.rejected_stale = rs.rejected_stale;
    fs.refreshes_sent = rs.refreshes_sent;
    result.fault_summary = fs;
  }
  if (rt.async_delivery()) {
    AsyncTotals at;
    at.delivered = cs.async_delivered();
    at.staleness_sum = cs.async_staleness_sum();
    at.staleness_max = cs.async_staleness_max();
    at.epochs = rt.epochs_completed();
    result.async_totals = at;
  }
  if (rt.node_topology()) {
    NodeTotals nt;
    nt.msgs_intra = cs.intra_messages();
    nt.bytes_intra = cs.intra_bytes();
    nt.msgs_inter = cs.inter_messages();
    nt.bytes_inter = cs.inter_bytes();
    nt.forward_frames = cs.forward_frames();
    nt.forwarded_records = cs.forwarded_records();
    result.node_totals = nt;
  }
  if (opt.profiler && tracer) {
    // Advisory prof.* gauges, rank-0 slot. Registered only when a profiler
    // rides along, so prof-off traces stay byte-identical to pre-profiling
    // builds. The values are the profiler's own alloc-window deltas — the
    // same numbers the prof record exports, which is exactly what
    // `dsouth-analyze -check -prof-record` cross-checks.
    auto& m = tracer->metrics();
    const auto id_track =
        m.register_metric("prof.alloc_tracking", trace::MetricKind::kGauge);
    const auto id_allocs =
        m.register_metric("prof.allocs_total", trace::MetricKind::kGauge);
    const auto id_bytes =
        m.register_metric("prof.allocs_bytes", trace::MetricKind::kGauge);
    const auto id_frees =
        m.register_metric("prof.frees_total", trace::MetricKind::kGauge);
    m.set(id_track, 0, opt.profiler->alloc_tracking() ? 1.0 : 0.0);
    m.set(id_allocs, 0, static_cast<double>(opt.profiler->allocs_total()));
    m.set(id_bytes, 0, static_cast<double>(opt.profiler->allocs_bytes()));
    m.set(id_frees, 0, static_cast<double>(opt.profiler->frees_total()));
  }
  if (opt.profiler) rt.set_profiler(nullptr);
  if (tracer) {
    tracer->flush();
    result.trace_log =
        std::make_shared<const trace::TraceLog>(tracer->take_log());
    rt.set_tracer(nullptr);
  }
  return result;
}

DistRunResult run_distributed(DistMethod method, const CsrMatrix& a,
                              const graph::Partition& partition,
                              std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const DistRunOptions& opt) {
  DistLayout layout(a, partition);
  return run_distributed(method, layout, b, x0, opt);
}

}  // namespace dsouth::dist
