#include "dist/driver.hpp"

#include <cmath>

#include "dist/block_jacobi.hpp"
#include "dist/harness.hpp"
#include "dist/multicolor_block_gs.hpp"
#include "dist/parallel_southwell.hpp"
#include "simmpi/delivery.hpp"
#include "util/error.hpp"
#include "util/interp.hpp"
#include "util/stopwatch.hpp"

namespace dsouth::dist {

const char* method_name(DistMethod m) {
  switch (m) {
    case DistMethod::kBlockJacobi:
      return "BlockJacobi";
    case DistMethod::kParallelSouthwell:
      return "ParallelSouthwell";
    case DistMethod::kDistributedSouthwell:
      return "DistributedSouthwell";
    case DistMethod::kMulticolorBlockGs:
      return "MulticolorBlockGs";
  }
  return "?";
}

const char* method_abbrev(DistMethod m) {
  switch (m) {
    case DistMethod::kBlockJacobi:
      return "BJ";
    case DistMethod::kParallelSouthwell:
      return "PS";
    case DistMethod::kDistributedSouthwell:
      return "DS";
    case DistMethod::kMulticolorBlockGs:
      return "MCBGS";
  }
  return "?";
}

std::optional<DistRunResult::AtTarget> DistRunResult::at_target(
    double target) const {
  auto crossing = util::first_crossing_log10(residual_norm, target);
  if (!crossing) return std::nullopt;
  AtTarget out;
  out.steps = *crossing;
  out.model_time = util::interpolate_series(model_time, *crossing);
  out.comm_cost = util::interpolate_series(comm_cost, *crossing);
  out.solve_comm = util::interpolate_series(solve_comm, *crossing);
  out.res_comm = util::interpolate_series(res_comm, *crossing);
  out.relaxations_per_n =
      util::interpolate_series(relaxations, *crossing) /
      static_cast<double>(n);
  // Mean active fraction over the steps leading to the crossing.
  const auto upto = std::min<std::size_t>(
      active_ranks.size(),
      static_cast<std::size_t>(std::ceil(std::max(1.0, *crossing))));
  double sum = 0.0;
  for (std::size_t k = 0; k < upto; ++k) {
    sum += static_cast<double>(active_ranks[k]);
  }
  out.active_fraction =
      upto == 0 ? 0.0
                : sum / (static_cast<double>(upto) *
                         static_cast<double>(num_ranks));
  return out;
}

double DistRunResult::mean_step_time() const {
  if (steps_taken() == 0) return 0.0;
  return model_time.back() / static_cast<double>(steps_taken());
}

double DistRunResult::mean_step_comm() const {
  if (steps_taken() == 0) return 0.0;
  return comm_cost.back() / static_cast<double>(steps_taken());
}

double DistRunResult::mean_active_fraction() const {
  if (steps_taken() == 0) return 0.0;
  double sum = 0.0;
  for (index_t a : active_ranks) sum += static_cast<double>(a);
  return sum / (static_cast<double>(steps_taken()) *
                static_cast<double>(num_ranks));
}

std::unique_ptr<DistStationarySolver> make_dist_solver(
    DistMethod method, const DistLayout& layout, simmpi::Runtime& rt,
    std::span<const value_t> b, std::span<const value_t> x0,
    const DistRunOptions& opt) {
  switch (method) {
    case DistMethod::kBlockJacobi:
      return std::make_unique<BlockJacobi>(layout, rt, b, x0);
    case DistMethod::kParallelSouthwell:
      return std::make_unique<ParallelSouthwell>(
          layout, rt, b, x0, opt.ps_explicit_residual_updates);
    case DistMethod::kDistributedSouthwell:
      return std::make_unique<DistributedSouthwell>(layout, rt, b, x0,
                                                    opt.ds);
    case DistMethod::kMulticolorBlockGs:
      return std::make_unique<MulticolorBlockGs>(layout, rt, b, x0);
  }
  DSOUTH_CHECK(false);
  return nullptr;
}

DistRunResult run_distributed(DistMethod method, const DistLayout& layout,
                              std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const DistRunOptions& opt) {
  // All construction and attachment lives in RunHarness (harness.hpp) so
  // the elastic driver assembles the identical stack; this function keeps
  // only the stepping loop and its observer-side stop rules.
  RunHarness h(method, layout, b, x0, opt);
  DistStationarySolver* solver = &h.solver();

  DistRunResult result;
  h.init_result(result);
  h.record_state(result);

  index_t total_relax = 0;
  const double r0 = result.residual_norm.front();
  double best_rn = r0;
  index_t steps_since_best = 0;
  if (opt.profiler) opt.profiler->begin_alloc_window();
  for (index_t k = 0; k < opt.max_parallel_steps; ++k) {
    // Time the parallel steps only — the observer-side recording below is
    // backend-independent bookkeeping.
    util::Stopwatch wall;
    const DistStepStats stats = [&] {
      const prof::ScopedPhase prof_step(opt.profiler, layout.num_ranks(),
                                        prof::PhaseId::kStep);
      return solver->step();
    }();
    result.wall_seconds += wall.seconds();
    total_relax += stats.relaxations;
    result.active_ranks.push_back(stats.active_ranks);
    h.record_state(result);
    result.relaxations.back() = static_cast<double>(total_relax);
    const double rn = result.residual_norm.back();
    if (opt.stop_at_residual > 0.0 && rn <= opt.stop_at_residual) break;
    if (opt.divergence_abort > 0.0 && rn >= opt.divergence_abort) break;
    if (opt.watchdog.enabled) {
      // Observer-side divergence watchdog: a faulted run stops with a
      // report instead of hanging or overflowing.
      if (!std::isfinite(rn)) {
        result.watchdog = {true, "non-finite residual", k + 1};
        break;
      }
      if (rn > opt.watchdog.growth_factor * r0) {
        result.watchdog = {true, "residual exceeded growth_factor x initial",
                           k + 1};
        break;
      }
      if (rn < best_rn) {
        best_rn = rn;
        steps_since_best = 0;
      } else if (opt.watchdog.stall_steps > 0 &&
                 ++steps_since_best >= opt.watchdog.stall_steps) {
        result.watchdog = {true, "residual stalled", k + 1};
        break;
      }
    }
  }
  h.drain_if_async();
  if (opt.profiler) opt.profiler->end_alloc_window();
  result.final_x = solver->gather_x();
  h.fill_totals(result);
  h.finish(result);
  return result;
}

DistRunResult run_distributed(DistMethod method, const CsrMatrix& a,
                              const graph::Partition& partition,
                              std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const DistRunOptions& opt) {
  DistLayout layout(a, partition);
  return run_distributed(method, layout, b, x0, opt);
}

}  // namespace dsouth::dist
