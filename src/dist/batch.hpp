#pragma once

/// \file batch.hpp
/// Batched multi-tenant serving: run B independent systems ("tenants" —
/// same sparsity, different right-hand sides and/or coefficients) through
/// ONE simulated runtime, sharing epochs, fences, and physical messages
/// (DESIGN.md §14, docs/serving.md).
///
/// Why batching wins: the machine model charges per-message latency (α)
/// and a per-epoch synchronization term per fence. B solo runs pay both B
/// times; a batched run pays one fence per epoch for all tenants, and
/// co-scheduled tenants that stage to the same neighbor in the same epoch
/// share a single physical put (a wire tenant frame, wire.hpp), so the
/// physical message count drops below B × solo while every tenant's
/// *logical* record count is exactly its solo count. bench/throughput
/// measures both and gates on them.
///
/// Scheduling: each parallel step runs every non-converged tenant's phase
/// table (solver_base.hpp) inside shared epochs —
///
///   bulk-synchronous:  for e in [0, step_epochs()):
///                        for_each_rank(per-tenant rank_send(e), ship);
///                        fence;
///                        for_each_rank(demux absorb)
///   event-driven:      for_each_rank(demux absorb,
///                                    per-tenant rank_async_send, ship);
///                        fence
///
/// where "ship" merges what the tenants' ChannelSets buffered into one
/// tenant frame per (peer, tag) (wire::ChannelSet::ship_batch) and "demux
/// absorb" walks each received frame, dispatching every entry to its
/// tenant's absorb_payload. Tenants only share the wire — no solver state
/// crosses tenants — so each tenant's iterates, absorb order, and
/// floating-point operation order are exactly its solo run's, and the
/// per-tenant trajectories are bit-identical to B solo runs under the
/// default bulk-synchronous configuration (tests/test_batch.cpp).
///
/// Convergence and dropout: tenants converge at different steps. A tenant
/// whose residual reaches its target stops scheduling (no begin_step, no
/// sends — it drops out of the frames) but keeps absorbing anything still
/// in flight to it (event-driven runs mature messages late), so survivors
/// are not perturbed: their per-tenant record streams are unchanged by a
/// neighbor tenant's exit.
///
/// B = 1 degenerates to the unbatched driver outright — run_batched
/// delegates to run_distributed, so a single-tenant "batched" run is
/// byte-identical to an unbatched one (iterates AND traces) by
/// construction, the same degeneracy contract flat topologies and
/// staleness-0 async follow. Residual-norm accounting for B >= 2 uses the
/// batched SoA kernel (kernels::norm_sq_batch) with per-rank partial sums,
/// which reproduces each solver's global_residual_norm() bit-for-bit.
///
/// Unsupported in batched runs (checked): watchdog and divergence_abort
/// (observer policies defined on a single trajectory), and
/// coalesce_messages for B >= 2 is subsumed — batch staging IS the
/// per-peer merge, so the option is ignored rather than composed.

#include <memory>
#include <optional>
#include <vector>

#include "dist/driver.hpp"

namespace dsouth::dist {

/// One tenant's system: right-hand side, initial guess, and an optional
/// per-tenant convergence target. The spans must outlive the run.
struct TenantSpec {
  std::span<const value_t> b;
  std::span<const value_t> x0;
  /// Stop scheduling this tenant when its ‖r‖₂ reaches this value;
  /// 0 inherits DistRunOptions::stop_at_residual (0 there too = run all
  /// steps).
  value_t stop_at_residual = 0.0;
};

/// Per-tenant outcome of a batched run.
struct TenantResult {
  /// ‖r‖₂ after k parallel steps of THIS tenant's schedule; index 0 = the
  /// initial state. A tenant that dropped out at step s has s + 1 entries.
  std::vector<double> residual_norm;
  /// Steps this tenant was scheduled for (== residual_norm.size() - 1).
  index_t steps = 0;
  /// True when the tenant reached its stop_at_residual target.
  bool converged = false;
  double final_residual = 0.0;
  std::vector<value_t> final_x;
  /// Row relaxations this tenant performed (cumulative).
  std::uint64_t relaxations = 0;
  /// Logical wire records shipped on the tenant's behalf — equal to the
  /// logical message count of the tenant's solo run (CommStats tenant
  /// tallies; tests pin the invariance).
  std::uint64_t wire_records = 0;
  /// Payload doubles shipped on the tenant's behalf (its share of the
  /// shared frames, excluding frame headers).
  std::uint64_t wire_doubles = 0;
};

/// Whole-batch outcome: shared-wire totals plus per-tenant results.
struct BatchRunResult {
  std::string method;
  int num_ranks = 0;
  index_t n = 0;            ///< rows per tenant system
  std::size_t batch = 0;    ///< B
  std::string backend;
  int num_threads = 1;
  double wall_seconds = 0.0;

  std::vector<TenantResult> tenants;

  /// Exact end-of-run CommStats totals for the SHARED wire (physical
  /// messages are shared frames; logical records sum the tenants').
  DistRunResult::CommTotals comm_totals;
  double model_time = 0.0;  ///< modeled seconds for the whole batch
  index_t steps_taken = 0;  ///< parallel steps until all tenants finished
  std::uint64_t epochs = 0; ///< runtime epochs the batch closed
  /// Tenant frames rejected whole by the demux (malformed under fault
  /// injection; every entry of a rejected frame is lost to its tenant and
  /// recovered by the resilient refresh path).
  std::uint64_t frames_rejected = 0;
  /// Merged trace when opt.trace.enabled, else null.
  std::shared_ptr<const trace::TraceLog> trace_log;
  /// B == 1 only: the delegated unbatched result, in full (the batched
  /// fields above are derived from it; byte-identity tests compare this
  /// against a direct run_distributed call).
  std::optional<DistRunResult> solo;
};

/// Run `specs.size()` tenants of `method` batched through one runtime.
/// `layouts` holds either ONE layout (all tenants share the matrix — the
/// different-RHS case) or one per tenant (different coefficients, same
/// sparsity); all layouts must share the rank count and communication
/// structure, which proxy-suite tenant sweeps guarantee by construction
/// (sparse/proxy_suite.hpp). B == 1 delegates to run_distributed.
BatchRunResult run_distributed_batch(DistMethod method,
                                     std::span<const DistLayout* const> layouts,
                                     std::span<const TenantSpec> specs,
                                     const DistRunOptions& opt = {});

}  // namespace dsouth::dist
