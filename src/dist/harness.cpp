#include "dist/harness.hpp"

#include "util/error.hpp"
#include "wire/comm_plan.hpp"

namespace dsouth::dist {

RunHarness::RunHarness(DistMethod method, const DistLayout& layout,
                       std::span<const value_t> b,
                       std::span<const value_t> x0,
                       const DistRunOptions& opt)
    : opt_(&opt), rt_(layout.num_ranks(), opt.machine, opt.delivery) {
  // The delivery policy must be attached before the tracer (so the async
  // metrics register) and before the solver (so async_mode() is stable
  // from construction on).
  if (opt.async) {
    simmpi::EventDrivenOptions eo;
    eo.seed = opt.async_seed;
    eo.min_latency_epochs = opt.async_min_latency;
    eo.max_latency_epochs = opt.async_max_latency;
    eo.max_staleness = opt.max_staleness;
    async_policy_ = std::make_unique<simmpi::EventDrivenPolicy>(eo);
    rt_.set_delivery_policy(async_policy_.get());
  }
  // Node-aware topology. Run options take precedence over a topology
  // already attached to the layout; a locally-built topology must outlive
  // the runtime, hence the member optional. Flat topologies degenerate to
  // "detached" inside the runtime, so attaching one here is harmless (and
  // byte-identical to not attaching).
  const simmpi::NodeTopology* topo = layout.node_topology();
  if (!opt.node_map.empty()) {
    run_topo_.emplace(simmpi::NodeTopology::explicit_map(opt.node_map));
    topo = &*run_topo_;
  } else if (opt.ranks_per_node > 0) {
    run_topo_.emplace(simmpi::NodeTopology::ranks_per_node(
        layout.num_ranks(), opt.ranks_per_node));
    topo = &*run_topo_;
  } else if (opt.num_nodes > 0) {
    const int p = layout.num_ranks();
    run_topo_.emplace(simmpi::NodeTopology::ranks_per_node(
        p, (p + opt.num_nodes - 1) / opt.num_nodes));
    topo = &*run_topo_;
  }
  if (topo) {
    simmpi::NodeRoutingOptions nro;
    nro.route_via_leaders = opt.node_route;
    if (opt.node_route) {
      // The runtime only needs the dense channel-count matrix (to size
      // forward-frame bitmaps); the full NodeCommPlan stays a wire-layer
      // object.
      nro.pair_channel_counts =
          wire::NodeCommPlan(layout.comm_plan(), *topo)
              .pair_channel_counts();
    }
    rt_.set_node_topology(topo, std::move(nro));
  }
  // The tracer must be attached before the solver is constructed so solver
  // ctors can register their metrics.
  if (opt.trace.enabled) {
    tracer_ = std::make_unique<trace::Tracer>(layout.num_ranks(), opt.trace);
    rt_.set_tracer(tracer_.get());
  }
  // Host profiling is attach-by-pointer like the tracer, but inverted:
  // the tracer records what the simulation *modeled*, the profiler records
  // what the host *spent*, and nothing it measures feeds back in.
  if (opt.profiler) rt_.set_profiler(opt.profiler);
  // A fault schedule is attached only for a nonzero plan, so the default
  // path stays byte-identical to a fault-free build (no extra RNG draws,
  // no extra metrics).
  if (opt.faults.any()) {
    fault_schedule_ = std::make_unique<faults::FaultSchedule>(
        opt.faults, layout.num_ranks());
    rt_.set_fault_schedule(fault_schedule_.get());
  }
  backend_ = simmpi::make_backend(opt.backend, opt.num_threads);
  solver_ = make_dist_solver(method, layout, rt_, b, x0, opt);
  solver_->set_backend(*backend_);
  // Async delivery forces the resilient receive path: maturation is
  // out-of-order by construction, and the seq-gated absolute-x encoding is
  // what keeps ghost caches and DS's Γ̃ bookkeeping correct under it.
  ResilienceOptions resilience = opt.resilience;
  if (opt.async) resilience.enabled = true;
  DSOUTH_CHECK_MSG(!(resilience.enabled && opt.coalesce_messages),
                   "resilience and message coalescing are incompatible");
  if (opt.coalesce_messages) solver_->set_message_coalescing(true);
  if (resilience.enabled) solver_->set_resilience(resilience);
}

RunHarness::~RunHarness() {
  // finish() normally detaches; cover early exits so the runtime never
  // outlives an attachment it doesn't own.
  if (opt_->profiler) rt_.set_profiler(nullptr);
  if (tracer_) rt_.set_tracer(nullptr);
}

void RunHarness::init_result(DistRunResult& result) const {
  result.method = solver_->name();
  result.num_ranks = rt_.num_ranks();
  result.n = solver_->layout().global_rows();
  result.backend = backend_->name();
  result.num_threads = backend_->num_threads();
}

void RunHarness::record_state(DistRunResult& result) const {
  result.residual_norm.push_back(solver_->global_residual_norm());
  result.model_time.push_back(rt_.model_time_seconds());
  result.comm_cost.push_back(rt_.stats().comm_cost());
  result.solve_comm.push_back(rt_.stats().comm_cost(simmpi::MsgTag::kSolve));
  result.res_comm.push_back(rt_.stats().comm_cost(simmpi::MsgTag::kResidual));
  result.relaxations.push_back(
      result.relaxations.empty() ? 0.0 : result.relaxations.back());
}

void RunHarness::drain_if_async() {
  if (!rt_.async_delivery()) return;
  // Gated on the runtime, not opt.async: a staleness-0 policy degenerates
  // to bulk-synchronous delivery and must add nothing to the trace.
  rt_.drain_delayed();
  solver_->absorb_all();
}

void RunHarness::fill_totals(DistRunResult& result) const {
  const simmpi::CommStats& cs = rt_.stats();
  result.comm_totals.msgs = cs.total_messages();
  result.comm_totals.bytes = cs.total_bytes();
  result.comm_totals.msgs_solve = cs.total_messages(simmpi::MsgTag::kSolve);
  result.comm_totals.msgs_residual =
      cs.total_messages(simmpi::MsgTag::kResidual);
  result.comm_totals.msgs_other = cs.total_messages(simmpi::MsgTag::kOther);
  result.comm_totals.msgs_logical = cs.logical_messages();
  result.comm_totals.msgs_logical_solve =
      cs.logical_messages(simmpi::MsgTag::kSolve);
  result.comm_totals.msgs_logical_residual =
      cs.logical_messages(simmpi::MsgTag::kResidual);
  if (fault_schedule_) {
    FaultSummary fs;
    fs.msgs_dropped = cs.dropped_messages();
    fs.msgs_duplicated = cs.duplicated_messages();
    fs.msgs_corrupted = cs.corrupted_messages();
    fs.msgs_dead_dropped = cs.dead_dropped_messages();
    const ResilienceStats rs = solver_->resilience_stats();
    fs.rejected_corrupt = rs.rejected_corrupt;
    fs.rejected_stale = rs.rejected_stale;
    fs.refreshes_sent = rs.refreshes_sent;
    result.fault_summary = fs;
  }
  if (rt_.async_delivery()) {
    AsyncTotals at;
    at.delivered = cs.async_delivered();
    at.staleness_sum = cs.async_staleness_sum();
    at.staleness_max = cs.async_staleness_max();
    at.epochs = rt_.epochs_completed();
    result.async_totals = at;
  }
  if (rt_.node_topology()) {
    NodeTotals nt;
    nt.msgs_intra = cs.intra_messages();
    nt.bytes_intra = cs.intra_bytes();
    nt.msgs_inter = cs.inter_messages();
    nt.bytes_inter = cs.inter_bytes();
    nt.forward_frames = cs.forward_frames();
    nt.forwarded_records = cs.forwarded_records();
    result.node_totals = nt;
  }
}

void RunHarness::finish(DistRunResult& result) {
  if (opt_->profiler && tracer_) {
    // Advisory prof.* gauges, rank-0 slot. Registered only when a profiler
    // rides along, so prof-off traces stay byte-identical to pre-profiling
    // builds. The values are the profiler's own alloc-window deltas — the
    // same numbers the prof record exports, which is exactly what
    // `dsouth-analyze -check -prof-record` cross-checks.
    auto& m = tracer_->metrics();
    const auto id_track =
        m.register_metric("prof.alloc_tracking", trace::MetricKind::kGauge);
    const auto id_allocs =
        m.register_metric("prof.allocs_total", trace::MetricKind::kGauge);
    const auto id_bytes =
        m.register_metric("prof.allocs_bytes", trace::MetricKind::kGauge);
    const auto id_frees =
        m.register_metric("prof.frees_total", trace::MetricKind::kGauge);
    m.set(id_track, 0, opt_->profiler->alloc_tracking() ? 1.0 : 0.0);
    m.set(id_allocs, 0,
          static_cast<double>(opt_->profiler->allocs_total()));
    m.set(id_bytes, 0, static_cast<double>(opt_->profiler->allocs_bytes()));
    m.set(id_frees, 0, static_cast<double>(opt_->profiler->frees_total()));
  }
  if (opt_->profiler) rt_.set_profiler(nullptr);
  if (tracer_) {
    tracer_->flush();
    result.trace_log =
        std::make_shared<const trace::TraceLog>(tracer_->take_log());
    rt_.set_tracer(nullptr);
    tracer_.reset();
  }
}

}  // namespace dsouth::dist
