#pragma once

/// \file multicolor_block_gs.hpp
/// Multicolor Block Gauss–Seidel in distributed memory — the classical
/// alternative the paper's introduction discusses ("Gauss-Seidel can be
/// parallelized by using block multicoloring, but a large number of colors
/// may be needed for irregular problems [3]").
///
/// The subdomain graph (ranks as vertices, coupling as edges) is greedily
/// colored; each parallel step relaxes every subdomain of ONE color and
/// exchanges boundary updates, so one full sweep costs `num_colors`
/// parallel steps. Within a color the subdomains are independent, which is
/// what gives the method Gauss–Seidel-grade convergence (and guaranteed
/// SPD convergence, unlike Block Jacobi) at the price of `num_colors`×
/// the synchronization.

#include "dist/solver_base.hpp"
#include "graph/coloring.hpp"

namespace dsouth::dist {

class MulticolorBlockGs final : public DistStationarySolver {
 public:
  MulticolorBlockGs(const DistLayout& layout, simmpi::Runtime& rt,
                    std::span<const value_t> b, std::span<const value_t> x0);

  /// One parallel step = relax the next color. A full sweep over all
  /// subdomains takes num_colors() steps.
  const char* name() const override { return "MulticolorBlockGs"; }

  int num_colors() const { return static_cast<int>(coloring_.num_colors); }
  int current_color() const { return next_color_; }

  // Stepping hooks (solver_base.hpp): begin_step rotates the color; the
  // send phase is a no-op for off-color ranks, so running it for every
  // rank is byte-identical to the old restricted-rank dispatch.
  void begin_step() override;
  void rank_send(int e, simmpi::RankContext& ctx, int p) override;
  void rank_async_send(simmpi::RankContext& ctx, int p) override;
  void absorb_payload(simmpi::RankContext& ctx, int p, std::size_t nbi,
                      std::span<const double> payload) override;

  /// Repartition recovery recolors the new subdomain graph and restarts
  /// the rotation at color 0.
  RecoveryContract recovery_contract() const override {
    RecoveryContract c;
    c.restarts_schedule = true;
    return c;
  }

 protected:
  // Checkpoint stream: the color-rotation cursors.
  void capture_extra(std::vector<double>& out) const override;
  void restore_extra(std::span<const double> in) override;

 private:
  void rank_relax(simmpi::RankContext& ctx, int p);

  graph::Coloring coloring_;                    // colors over ranks
  std::vector<std::vector<int>> color_ranks_;   // color -> rank list
  int next_color_ = 0;
  int step_color_ = 0;  // the color this step relaxes (set by begin_step)
};

}  // namespace dsouth::dist
