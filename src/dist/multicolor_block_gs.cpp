#include "dist/multicolor_block_gs.hpp"

#include "dist/subdomain.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

MulticolorBlockGs::MulticolorBlockGs(const DistLayout& layout,
                                     simmpi::Runtime& rt,
                                     std::span<const value_t> b,
                                     std::span<const value_t> x0)
    : DistStationarySolver(layout, rt, b, x0) {
  // Color the subdomain coupling graph.
  std::vector<std::pair<graph::index_t, graph::index_t>> edges;
  for (int p = 0; p < layout.num_ranks(); ++p) {
    for (const auto& nb : layout.rank(p).neighbors) {
      if (nb.rank > p) edges.emplace_back(p, nb.rank);
    }
  }
  auto rank_graph = graph::Graph::from_edges(layout.num_ranks(), edges);
  coloring_ = graph::greedy_coloring(rank_graph, graph::ColoringOrder::kBfs);
  color_ranks_.resize(static_cast<std::size_t>(coloring_.num_colors));
  for (int p = 0; p < layout.num_ranks(); ++p) {
    color_ranks_[static_cast<std::size_t>(
                     coloring_.color[static_cast<std::size_t>(p)])]
        .push_back(p);
  }
}

void MulticolorBlockGs::capture_extra(std::vector<double>& out) const {
  out.push_back(static_cast<double>(next_color_));
  out.push_back(static_cast<double>(step_color_));
}

void MulticolorBlockGs::restore_extra(std::span<const double> in) {
  DSOUTH_CHECK_MSG(in.size() == 2, "malformed MCBGS checkpoint stream");
  next_color_ = static_cast<int>(in[0]);
  step_color_ = static_cast<int>(in[1]);
  DSOUTH_CHECK(next_color_ >= 0 && next_color_ < num_colors());
  DSOUTH_CHECK(step_color_ >= 0 && step_color_ < num_colors());
}

void MulticolorBlockGs::rank_relax(simmpi::RankContext& ctx, int p) {
  const auto prof_relax = prof_phase(p, prof::PhaseId::kRelax);
  const RankData& rd = layout_->rank(p);
  if (rd.num_rows() == 0) return;
  const auto up = static_cast<std::size_t>(p);
  auto& xp = x_[up];
  auto& rp = r_[up];
  auto& snap = scratch_[up];
  snap.assign(xp.begin(), xp.end());
  const double flops = local_gauss_seidel_sweep(rd.a_local, xp, rp);
  ctx.add_flops(flops);
  ++rank_stats_[up].active_ranks;
  rank_stats_[up].relaxations += rd.num_rows();
  trace_relax(ctx, rd.num_rows());
  const auto prof_encode = prof_phase(p, prof::PhaseId::kEncode);
  auto& ch = channels_[up];
  for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
    const auto& nb = rd.neighbors[k];
    auto rec = ch.open(ctx, k, wire::RecordType::kGhostDelta);
    for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
      const auto li = static_cast<std::size_t>(nb.send_rows_local[s]);
      // Resilient mode ships absolute boundary x (self-healing across
      // message loss — solver_base.hpp); default mode ships the delta.
      rec.dx[s] = resilient() ? xp[li] : xp[li] - snap[li];
    }
  }
  ch.flush(ctx);
}

void MulticolorBlockGs::absorb_payload(simmpi::RankContext& ctx, int p,
                                       std::size_t nbi,
                                       std::span<const double> payload) {
  const auto& nb = layout_->rank(p).neighbors[nbi];
  if (resilient()) {
    const auto body = resil_accept(ctx, p, nbi, payload);
    if (body.empty()) return;
    const auto rec =
        wire::decode_record(wire::Family::kDelta, body, nb.ghost_rows.size());
    resil_apply_boundary_x(ctx, p, nbi, rec.dx);
    return;
  }
  wire::for_each_record(wire::Family::kDelta, payload, nb.ghost_rows.size(),
                        [&](const wire::Record& rec) {
                          apply_incoming_delta(ctx, nb, rec.dx);
                        });
}

void MulticolorBlockGs::begin_step() {
  DistStationarySolver::begin_step();
  step_color_ = next_color_;
  next_color_ = (next_color_ + 1) % num_colors();
}

void MulticolorBlockGs::rank_send(int /*e*/, simmpi::RankContext& ctx,
                                  int p) {
  // Off-color ranks do nothing — no trace events, no flops, no stats — so
  // sweeping every rank here matches the old color-restricted dispatch
  // byte for byte. The color rotation is unchanged — only which hook
  // advances it moved.
  if (static_cast<int>(coloring_.color[static_cast<std::size_t>(p)]) !=
      step_color_) {
    return;
  }
  rank_relax(ctx, p);
}

void MulticolorBlockGs::rank_async_send(simmpi::RankContext& ctx, int p) {
  if (static_cast<int>(coloring_.color[static_cast<std::size_t>(p)]) !=
      step_color_) {
    return;
  }
  rank_relax(ctx, p);
}

}  // namespace dsouth::dist
