#include "dist/batch.hpp"

#include <cmath>
#include <functional>

#include "kernels/kernels.hpp"
#include "simmpi/delivery.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "wire/wire.hpp"

namespace dsouth::dist {

namespace {

/// Tenant layouts must agree on everything the shared schedule and the
/// shared wire depend on: rank count, row distribution, and the exact
/// communication structure (peer lists and directed channel widths). The
/// proxy-suite tenant sweeps perturb only numerical values, never the
/// sparsity, so layouts built from one partition always pass.
void check_layout_compatible(const DistLayout& a, const DistLayout& b) {
  DSOUTH_CHECK_MSG(a.num_ranks() == b.num_ranks(),
                   "tenant layouts disagree on rank count");
  DSOUTH_CHECK_MSG(a.global_rows() == b.global_rows(),
                   "tenant layouts disagree on system size");
  for (int p = 0; p < a.num_ranks(); ++p) {
    const auto pa = a.comm_plan().peers(p);
    const auto pb = b.comm_plan().peers(p);
    DSOUTH_CHECK_MSG(pa.size() == pb.size(),
                     "tenant layouts disagree on neighbor count of rank "
                         << p);
    for (std::size_t k = 0; k < pa.size(); ++k) {
      DSOUTH_CHECK_MSG(pa[k].rank == pb[k].rank &&
                           pa[k].send_width == pb[k].send_width &&
                           pa[k].recv_width == pb[k].recv_width,
                       "tenant layouts disagree on channel " << k
                                                             << " of rank "
                                                             << p);
    }
  }
}

/// B == 1 degenerates to the unbatched driver: delegate wholesale, so a
/// single-tenant batched run is byte-identical to run_distributed —
/// iterates, traces, stats — by construction.
BatchRunResult run_single(DistMethod method, const DistLayout& layout,
                          const TenantSpec& spec, const DistRunOptions& opt) {
  DistRunOptions sopt = opt;
  if (spec.stop_at_residual > 0.0) {
    sopt.stop_at_residual = spec.stop_at_residual;
  }
  DistRunResult solo = run_distributed(method, layout, spec.b, spec.x0, sopt);

  BatchRunResult out;
  out.method = solo.method;
  out.num_ranks = solo.num_ranks;
  out.n = solo.n;
  out.batch = 1;
  out.backend = solo.backend;
  out.num_threads = solo.num_threads;
  out.wall_seconds = solo.wall_seconds;
  out.comm_totals = solo.comm_totals;
  out.model_time = solo.model_time.empty() ? 0.0 : solo.model_time.back();
  out.steps_taken = static_cast<index_t>(solo.steps_taken());
  if (solo.async_totals) out.epochs = solo.async_totals->epochs;
  out.trace_log = solo.trace_log;

  TenantResult t;
  t.residual_norm = solo.residual_norm;
  t.steps = static_cast<index_t>(solo.steps_taken());
  t.final_residual =
      solo.residual_norm.empty() ? 0.0 : solo.residual_norm.back();
  t.converged = sopt.stop_at_residual > 0.0 &&
                t.final_residual <= sopt.stop_at_residual;
  t.final_x = solo.final_x;
  t.relaxations = solo.relaxations.empty()
                      ? 0
                      : static_cast<std::uint64_t>(solo.relaxations.back());
  t.wire_records = solo.comm_totals.msgs_logical;
  // Recover payload doubles from the modeled byte total (every message is
  // charged header + 8 bytes per double — simmpi::message_bytes).
  t.wire_doubles = (solo.comm_totals.bytes -
                    simmpi::kMessageHeaderBytes * solo.comm_totals.msgs) /
                   8;
  out.tenants.push_back(std::move(t));
  out.solo = std::move(solo);
  return out;
}

}  // namespace

BatchRunResult run_distributed_batch(DistMethod method,
                                     std::span<const DistLayout* const> layouts,
                                     std::span<const TenantSpec> specs,
                                     const DistRunOptions& opt) {
  DSOUTH_CHECK_MSG(!specs.empty(), "batched run needs at least one tenant");
  DSOUTH_CHECK_MSG(layouts.size() == 1 || layouts.size() == specs.size(),
                   "pass one shared layout or one per tenant");
  for (const DistLayout* l : layouts) DSOUTH_CHECK(l != nullptr);
  for (std::size_t i = 1; i < layouts.size(); ++i) {
    check_layout_compatible(*layouts[0], *layouts[i]);
  }
  if (specs.size() == 1) return run_single(method, *layouts[0], specs[0], opt);

  const std::size_t batch = specs.size();
  const auto layout_of = [&](std::size_t t) -> const DistLayout& {
    return layouts.size() == 1 ? *layouts[0] : *layouts[t];
  };
  const DistLayout& layout = *layouts[0];
  const int num_ranks = layout.num_ranks();
  // Observer policies defined on a single trajectory do not lift to a
  // batch; reject rather than silently half-apply them.
  DSOUTH_CHECK_MSG(!opt.watchdog.enabled,
                   "the divergence watchdog is not supported for batched "
                   "runs (per-tenant stop_at_residual is)");
  DSOUTH_CHECK_MSG(opt.divergence_abort == 0.0,
                   "divergence_abort is not supported for batched runs");

  // --- Runtime and attachments: mirrors run_distributed exactly so every
  // feature (async delivery, node topology, tracing, profiling, faults)
  // composes with batching the way it composes with a solo run.
  simmpi::Runtime rt(num_ranks, opt.machine, opt.delivery);
  std::unique_ptr<simmpi::EventDrivenPolicy> async_policy;
  if (opt.async) {
    simmpi::EventDrivenOptions eo;
    eo.seed = opt.async_seed;
    eo.min_latency_epochs = opt.async_min_latency;
    eo.max_latency_epochs = opt.async_max_latency;
    eo.max_staleness = opt.max_staleness;
    async_policy = std::make_unique<simmpi::EventDrivenPolicy>(eo);
    rt.set_delivery_policy(async_policy.get());
  }
  std::optional<simmpi::NodeTopology> run_topo;
  const simmpi::NodeTopology* topo = layout.node_topology();
  if (!opt.node_map.empty()) {
    run_topo.emplace(simmpi::NodeTopology::explicit_map(opt.node_map));
    topo = &*run_topo;
  } else if (opt.ranks_per_node > 0) {
    run_topo.emplace(simmpi::NodeTopology::ranks_per_node(
        num_ranks, opt.ranks_per_node));
    topo = &*run_topo;
  } else if (opt.num_nodes > 0) {
    run_topo.emplace(simmpi::NodeTopology::ranks_per_node(
        num_ranks, (num_ranks + opt.num_nodes - 1) / opt.num_nodes));
    topo = &*run_topo;
  }
  if (topo) {
    simmpi::NodeRoutingOptions nro;
    nro.route_via_leaders = opt.node_route;
    if (opt.node_route) {
      nro.pair_channel_counts =
          wire::NodeCommPlan(layout.comm_plan(), *topo).pair_channel_counts();
    }
    rt.set_node_topology(topo, std::move(nro));
  }
  std::unique_ptr<trace::Tracer> tracer;
  if (opt.trace.enabled) {
    tracer = std::make_unique<trace::Tracer>(num_ranks, opt.trace);
    rt.set_tracer(tracer.get());
  }
  if (opt.profiler) rt.set_profiler(opt.profiler);
  std::unique_ptr<faults::FaultSchedule> fault_schedule;
  if (opt.faults.any()) {
    fault_schedule =
        std::make_unique<faults::FaultSchedule>(opt.faults, num_ranks);
    rt.set_fault_schedule(fault_schedule.get());
  }
  rt.set_num_tenants(batch);

  auto backend = simmpi::make_backend(opt.backend, opt.num_threads);
  // MetricsRegistry registration is idempotent by name, so B solver
  // constructors share one set of metric slots.
  std::vector<std::unique_ptr<DistStationarySolver>> solvers;
  solvers.reserve(batch);
  for (std::size_t t = 0; t < batch; ++t) {
    solvers.push_back(make_dist_solver(method, layout_of(t), rt, specs[t].b,
                                       specs[t].x0, opt));
    solvers.back()->set_backend(*backend);
    // Batch staging subsumes opt.coalesce_messages: ship_batch IS the
    // per-peer merge (one tenant frame per (peer, tag)), so the
    // coalescing flag is intentionally not forwarded.
    solvers.back()->set_batch_staging(true);
  }
  ResilienceOptions resilience = opt.resilience;
  if (opt.async) resilience.enabled = true;
  if (resilience.enabled) {
    for (auto& s : solvers) s->set_resilience(resilience);
  }

  BatchRunResult result;
  result.method = method_name(method);
  result.num_ranks = num_ranks;
  result.n = layout.global_rows();
  result.batch = batch;
  result.backend = backend->name();
  result.num_threads = backend->num_threads();
  result.tenants.resize(batch);

  // --- Shared-epoch scheduling state. All per-rank phase scratch is
  // per-slot (the SPMD discipline): a rank phase touches only
  // rank_sets[p] and rejected_per_rank[p].
  std::vector<char> active(batch, 1);
  std::vector<int> active_ids;
  std::vector<std::vector<wire::ChannelSet*>> rank_sets(
      static_cast<std::size_t>(num_ranks));
  std::vector<std::uint64_t> rejected_per_rank(
      static_cast<std::size_t>(num_ranks), 0);

  const auto run_rank_phase =
      [&](const std::function<void(simmpi::RankContext&, int)>& fn) {
        struct Call {
          simmpi::Runtime* rt;
          const std::function<void(simmpi::RankContext&, int)>* fn;
        } call{&rt, &fn};
        backend->run_epoch(num_ranks, [&call](int p) {
          simmpi::RankContext ctx(*call.rt, p);
          (*call.fn)(ctx, p);
        });
      };

  // Demultiplexing absorb: every window payload is a tenant frame; walk
  // it and hand each entry to its tenant's ordinary absorb path — the
  // per-tenant record streams (and so the per-tenant floating-point
  // schedules) are exactly the solo ones. A frame that fails structural
  // validation under fault injection is dropped whole; entries already
  // dispatched stay applied (each rides its own sequenced envelope, so
  // per-tenant idempotence covers the partial application).
  const auto demux_absorb = [&](simmpi::RankContext& ctx, int p) {
    const RankData& rd = layout.rank(p);
    for (const auto& msg : ctx.window()) {
      const int nbi = rd.neighbor_index(msg.source);
      DSOUTH_CHECK_MSG(nbi >= 0, "message from non-neighbor " << msg.source);
      if (fault_schedule) {
        try {
          wire::for_each_tenant(
              msg.payload, [&](const wire::TenantEntry& e) {
                DSOUTH_CHECK(e.tenant >= 0 &&
                             static_cast<std::size_t>(e.tenant) < batch);
                solvers[static_cast<std::size_t>(e.tenant)]->absorb_payload(
                    ctx, p, static_cast<std::size_t>(nbi), e.body);
              });
        } catch (const wire::DecodeError&) {
          ++rejected_per_rank[static_cast<std::size_t>(p)];
        }
      } else {
        wire::for_each_tenant(msg.payload, [&](const wire::TenantEntry& e) {
          DSOUTH_CHECK(e.tenant >= 0 &&
                       static_cast<std::size_t>(e.tenant) < batch);
          solvers[static_cast<std::size_t>(e.tenant)]->absorb_payload(
              ctx, p, static_cast<std::size_t>(nbi), e.body);
        });
      }
    }
    // One absorb event per rank for the shared window — frames are shared
    // wire, not any single tenant's traffic.
    solvers.front()->trace_absorb(ctx);
    ctx.consume();
  };

  // Per-tenant exact residual norms via the batched SoA kernel, with
  // per-rank partial sums so each lane reproduces its solver's
  // global_residual_norm() bit-for-bit (same addends, same order).
  std::vector<value_t> norm_acc(batch), rank_acc(batch), soa;
  std::vector<double> rn(batch);
  const auto compute_norms = [&] {
    std::fill(norm_acc.begin(), norm_acc.end(), value_t{0});
    for (int p = 0; p < num_ranks; ++p) {
      const auto rows =
          static_cast<std::size_t>(layout.rank(p).num_rows());
      if (rows == 0) continue;
      soa.resize(rows * batch);
      for (std::size_t t = 0; t < batch; ++t) {
        const auto rp = solvers[t]->local_r(p);
        for (std::size_t i = 0; i < rows; ++i) soa[i * batch + t] = rp[i];
      }
      std::fill(rank_acc.begin(), rank_acc.end(), value_t{0});
      kernels::norm_sq_batch(soa, batch, rank_acc);
      for (std::size_t t = 0; t < batch; ++t) norm_acc[t] += rank_acc[t];
    }
    for (std::size_t t = 0; t < batch; ++t) rn[t] = std::sqrt(norm_acc[t]);
  };
  const auto target_of = [&](std::size_t t) {
    return specs[t].stop_at_residual > 0.0 ? specs[t].stop_at_residual
                                           : opt.stop_at_residual;
  };

  compute_norms();
  for (std::size_t t = 0; t < batch; ++t) {
    result.tenants[t].residual_norm.push_back(rn[t]);
    if (target_of(t) > 0.0 && rn[t] <= target_of(t)) {
      active[t] = 0;
      result.tenants[t].converged = true;
    }
  }

  if (opt.profiler) opt.profiler->begin_alloc_window();
  for (index_t k = 0; k < opt.max_parallel_steps; ++k) {
    active_ids.clear();
    for (std::size_t t = 0; t < batch; ++t) {
      if (active[t]) active_ids.push_back(static_cast<int>(t));
    }
    if (active_ids.empty()) break;
    for (auto& sets : rank_sets) sets.clear();
    for (int t : active_ids) {
      for (int p = 0; p < num_ranks; ++p) {
        rank_sets[static_cast<std::size_t>(p)].push_back(
            &solvers[static_cast<std::size_t>(t)]->channel(p));
      }
    }

    util::Stopwatch wall;
    {
      const prof::ScopedPhase prof_step(opt.profiler, num_ranks,
                                        prof::PhaseId::kStep);
      for (int t : active_ids) {
        solvers[static_cast<std::size_t>(t)]->begin_step();
      }
      if (rt.async_delivery()) {
        // Event-driven: one fused shared epoch — demux whatever matured,
        // every scheduled tenant's relax-on-arrival send, ship, fence.
        run_rank_phase([&](simmpi::RankContext& ctx, int p) {
          demux_absorb(ctx, p);
          for (int t : active_ids) {
            solvers[static_cast<std::size_t>(t)]->rank_async_send(ctx, p);
          }
          wire::ChannelSet::ship_batch(
              ctx, rank_sets[static_cast<std::size_t>(p)], active_ids);
        });
        rt.fence();
      } else {
        const int epochs =
            solvers[static_cast<std::size_t>(active_ids.front())]
                ->step_epochs();
        for (int e = 0; e < epochs; ++e) {
          run_rank_phase([&](simmpi::RankContext& ctx, int p) {
            for (int t : active_ids) {
              solvers[static_cast<std::size_t>(t)]->rank_send(e, ctx, p);
            }
            wire::ChannelSet::ship_batch(
                ctx, rank_sets[static_cast<std::size_t>(p)], active_ids);
          });
          rt.fence();
          run_rank_phase(
              [&](simmpi::RankContext& ctx, int p) { demux_absorb(ctx, p); });
        }
      }
    }
    result.wall_seconds += wall.seconds();
    ++result.steps_taken;

    compute_norms();
    for (int t : active_ids) {
      const auto ut = static_cast<std::size_t>(t);
      const DistStepStats st = solvers[ut]->merge_rank_stats();
      result.tenants[ut].relaxations +=
          static_cast<std::uint64_t>(st.relaxations);
      result.tenants[ut].residual_norm.push_back(rn[ut]);
      ++result.tenants[ut].steps;
      if (target_of(ut) > 0.0 && rn[ut] <= target_of(ut)) {
        // Drop out: stop scheduling this tenant (it leaves the shared
        // frames) but keep absorbing anything still in flight to it.
        active[ut] = 0;
        result.tenants[ut].converged = true;
      }
    }
  }
  if (rt.async_delivery()) {
    rt.drain_delayed();
    run_rank_phase(
        [&](simmpi::RankContext& ctx, int p) { demux_absorb(ctx, p); });
    compute_norms();
  }
  if (opt.profiler) opt.profiler->end_alloc_window();

  for (std::size_t t = 0; t < batch; ++t) {
    result.tenants[t].final_residual = rn[t];
    result.tenants[t].final_x = solvers[t]->gather_x();
    result.tenants[t].wire_records = rt.stats().tenant_records(t);
    result.tenants[t].wire_doubles = rt.stats().tenant_doubles(t);
  }
  for (std::uint64_t r : rejected_per_rank) result.frames_rejected += r;
  result.model_time = rt.model_time_seconds();
  result.epochs = rt.epochs_completed();
  const simmpi::CommStats& cs = rt.stats();
  result.comm_totals.msgs = cs.total_messages();
  result.comm_totals.bytes = cs.total_bytes();
  result.comm_totals.msgs_solve = cs.total_messages(simmpi::MsgTag::kSolve);
  result.comm_totals.msgs_residual =
      cs.total_messages(simmpi::MsgTag::kResidual);
  result.comm_totals.msgs_other = cs.total_messages(simmpi::MsgTag::kOther);
  result.comm_totals.msgs_logical = cs.logical_messages();
  result.comm_totals.msgs_logical_solve =
      cs.logical_messages(simmpi::MsgTag::kSolve);
  result.comm_totals.msgs_logical_residual =
      cs.logical_messages(simmpi::MsgTag::kResidual);

  if (opt.profiler && tracer) {
    auto& m = tracer->metrics();
    const auto id_track =
        m.register_metric("prof.alloc_tracking", trace::MetricKind::kGauge);
    const auto id_allocs =
        m.register_metric("prof.allocs_total", trace::MetricKind::kGauge);
    const auto id_bytes =
        m.register_metric("prof.allocs_bytes", trace::MetricKind::kGauge);
    const auto id_frees =
        m.register_metric("prof.frees_total", trace::MetricKind::kGauge);
    m.set(id_track, 0, opt.profiler->alloc_tracking() ? 1.0 : 0.0);
    m.set(id_allocs, 0, static_cast<double>(opt.profiler->allocs_total()));
    m.set(id_bytes, 0, static_cast<double>(opt.profiler->allocs_bytes()));
    m.set(id_frees, 0, static_cast<double>(opt.profiler->frees_total()));
  }
  if (opt.profiler) rt.set_profiler(nullptr);
  if (tracer) {
    tracer->flush();
    result.trace_log =
        std::make_shared<const trace::TraceLog>(tracer->take_log());
    rt.set_tracer(nullptr);
  }
  return result;
}

}  // namespace dsouth::dist
