#include "dist/subdomain.hpp"

#include "util/error.hpp"

namespace dsouth::dist {

double local_gauss_seidel_sweep(const CsrMatrix& a_local, std::span<value_t> x,
                                std::span<value_t> r) {
  const index_t m = a_local.rows();
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(m));
  DSOUTH_CHECK(r.size() == static_cast<std::size_t>(m));
  auto row_ptr = a_local.row_ptr();
  auto col_idx = a_local.col_idx();
  auto vals = a_local.values();
  for (index_t i = 0; i < m; ++i) {
    const value_t aii = a_local.at(i, i);
    DSOUTH_ASSERT(aii != 0.0);
    const value_t delta = r[static_cast<std::size_t>(i)] / aii;
    if (delta == 0.0) continue;
    x[static_cast<std::size_t>(i)] += delta;
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      r[static_cast<std::size_t>(col_idx[k])] -= vals[k] * delta;
    }
    // Exact single-equation solve: pin the diagonal update.
    r[static_cast<std::size_t>(i)] = 0.0;
  }
  return 2.0 * static_cast<double>(a_local.nnz()) +
         2.0 * static_cast<double>(m);
}

value_t local_norm_sq(std::span<const value_t> r) {
  value_t s = 0.0;
  for (value_t v : r) s += v * v;
  return s;
}

}  // namespace dsouth::dist
