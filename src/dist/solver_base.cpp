#include "dist/solver_base.hpp"

#include <algorithm>
#include <cmath>

#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

void subtract_a_times_x_local(const DistLayout& layout,
                              const std::vector<std::vector<value_t>>& x,
                              std::vector<value_t>& r_p, int p) {
  const RankData& rd = layout.rank(p);
  if (rd.num_rows() == 0) return;
  rd.a_local.spmv_acc(-1.0, x[static_cast<std::size_t>(p)], r_p);
  for (const auto& nb : rd.neighbors) {
    std::vector<value_t> xg(nb.ghost_rows.size());
    for (std::size_t k = 0; k < nb.ghost_rows.size(); ++k) {
      const index_t g = nb.ghost_rows[k];
      xg[k] = x[static_cast<std::size_t>(layout.rank_of_row(g))]
               [static_cast<std::size_t>(layout.local_of_row(g))];
    }
    nb.a_pq.spmv_acc(-1.0, xg, r_p);
  }
}

DistStationarySolver::DistStationarySolver(const DistLayout& layout,
                                           simmpi::Runtime& rt,
                                           std::span<const value_t> b,
                                           std::span<const value_t> x0)
    : layout_(&layout),
      rt_(&rt),
      owned_backend_(std::make_unique<simmpi::SequentialBackend>()),
      backend_(owned_backend_.get()) {
  DSOUTH_CHECK(rt.num_ranks() == layout.num_ranks());
  DSOUTH_CHECK(b.size() == static_cast<std::size_t>(layout.global_rows()));
  DSOUTH_CHECK(x0.size() == static_cast<std::size_t>(layout.global_rows()));
  x_ = layout.scatter(x0);
  // Initial residual r_p = b_p - A_pp x_p - Σ_q A_pq x_q (setup phase; may
  // read neighbor x directly).
  r_ = layout.scatter(b);
  const auto nranks = static_cast<std::size_t>(layout.num_ranks());
  scratch_.resize(nranks);
  rank_stats_.resize(nranks);
  channels_.reserve(nranks);
  for (int p = 0; p < layout.num_ranks(); ++p) {
    subtract_a_times_x_local(layout, x_, r_[static_cast<std::size_t>(p)], p);
    scratch_[static_cast<std::size_t>(p)].resize(
        static_cast<std::size_t>(layout.rank(p).num_rows()));
    channels_.emplace_back(layout.comm_plan(), p);
  }
  if (auto* tracer = rt.tracer()) {
    auto& m = tracer->metrics();
    m_relaxed_rows_ = m.register_metric("solver.relaxed_rows",
                                        trace::MetricKind::kCounter);
    m_rank_relaxations_ = m.register_metric("solver.rank_relaxations",
                                            trace::MetricKind::kCounter);
    m_absorbed_msgs_ = m.register_metric("solver.absorbed_msgs",
                                         trace::MetricKind::kCounter);
  }
}

void DistStationarySolver::trace_relax(simmpi::RankContext& ctx,
                                       index_t rows) {
  if (!ctx.tracing()) return;
  const auto& rp = r_[static_cast<std::size_t>(ctx.rank())];
  ctx.trace_event(trace::EventKind::kRelax, static_cast<double>(rows),
                  local_norm_sq(rp));
  ctx.metric_add(m_relaxed_rows_, static_cast<double>(rows));
  ctx.metric_add(m_rank_relaxations_, 1.0);
}

void DistStationarySolver::trace_absorb(simmpi::RankContext& ctx) {
  if (!ctx.tracing()) return;
  const auto window = ctx.window();
  if (window.empty()) return;
  std::size_t doubles = 0;
  for (const auto& msg : window) doubles += msg.payload.size();
  ctx.trace_event(trace::EventKind::kAbsorb,
                  static_cast<double>(window.size()),
                  static_cast<double>(doubles));
  ctx.metric_add(m_absorbed_msgs_, static_cast<double>(window.size()));
}

double DistStationarySolver::global_residual_norm() const {
  double sum = 0.0;
  for (const auto& rp : r_) sum += local_norm_sq(rp);
  return std::sqrt(sum);
}

std::vector<value_t> DistStationarySolver::gather_x() const {
  return layout_->gather(x_);
}

DistStepStats DistStationarySolver::step() {
  begin_step();
  if (async_mode()) {
    // Relax-on-arrival: absorb whatever matured at earlier fences, run the
    // solver's fused send phase on that (staleness-bounded) state, fence
    // once. Messages sent here land whenever the delivery policy's
    // virtual clock says they do.
    for_each_rank([this](simmpi::RankContext& ctx, int p) {
      rank_absorb(ctx, p);
      rank_async_send(ctx, p);
    });
    rt_->fence();
    return merge_rank_stats();
  }
  const int epochs = step_epochs();
  for (int e = 0; e < epochs; ++e) {
    for_each_rank([this, e](simmpi::RankContext& ctx, int p) {
      rank_send(e, ctx, p);
    });
    rt_->fence();
    for_each_rank([this](simmpi::RankContext& ctx, int p) {
      rank_absorb(ctx, p);
    });
  }
  return merge_rank_stats();
}

void DistStationarySolver::rank_absorb(simmpi::RankContext& ctx, int p) {
  const auto prof_absorb = prof_phase(p, prof::PhaseId::kAbsorb);
  const RankData& rd = layout_->rank(p);
  for (const auto& msg : ctx.window()) {
    const int nbi = rd.neighbor_index(msg.source);
    DSOUTH_CHECK_MSG(nbi >= 0, "message from non-neighbor " << msg.source);
    absorb_payload(ctx, p, static_cast<std::size_t>(nbi), msg.payload);
  }
  trace_absorb(ctx);
  ctx.consume();
}

void DistStationarySolver::absorb_all() {
  for_each_rank([this](simmpi::RankContext& ctx, int p) {
    rank_absorb(ctx, p);
  });
}

void DistStationarySolver::set_message_coalescing(bool on) {
  for (auto& ch : channels_) ch.set_coalescing(on);
}

void DistStationarySolver::set_batch_staging(bool on) {
  for (auto& ch : channels_) ch.set_batch_staging(on);
}

bool DistStationarySolver::message_coalescing() const {
  return !channels_.empty() && channels_.front().coalescing();
}

void DistStationarySolver::set_resilience(const ResilienceOptions& opt) {
  DSOUTH_CHECK_MSG(resil_step_count_ == 0,
                   "set_resilience must precede the first step");
  DSOUTH_CHECK_MSG(!(opt.enabled && message_coalescing()),
                   "resilience and message coalescing are incompatible");
  DSOUTH_CHECK_MSG(opt.refresh_period >= 0, "refresh_period must be >= 0");
  resil_ = opt;
  for (auto& ch : channels_) ch.set_sequencing(opt.enabled);
  if (!opt.enabled) {
    ghost_x_.clear();
    recv_min_seq_.clear();
    last_send_step_.clear();
    resil_dx_.clear();
    resil_stats_.clear();
    return;
  }
  const auto nranks = static_cast<std::size_t>(layout_->num_ranks());
  ghost_x_.resize(nranks);
  recv_min_seq_.resize(nranks);
  last_send_step_.resize(nranks);
  resil_dx_.resize(nranks);
  resil_stats_.assign(nranks, ResilienceStats{});
  for (int p = 0; p < layout_->num_ranks(); ++p) {
    const RankData& rd = layout_->rank(p);
    const auto up = static_cast<std::size_t>(p);
    ghost_x_[up].resize(rd.neighbors.size());
    recv_min_seq_[up].assign(rd.neighbors.size(), 0);
    // Setup counts as a full exchange: both ends agree on x0 exactly.
    last_send_step_[up].assign(rd.neighbors.size(), 0);
    std::size_t max_width = 0;
    for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
      const auto& nb = rd.neighbors[k];
      max_width = std::max(max_width, nb.ghost_rows.size());
      auto& cache = ghost_x_[up][k];
      cache.resize(nb.ghost_rows.size());
      for (std::size_t g = 0; g < nb.ghost_rows.size(); ++g) {
        const index_t gr = nb.ghost_rows[g];
        cache[g] = x_[static_cast<std::size_t>(layout_->rank_of_row(gr))]
                     [static_cast<std::size_t>(layout_->local_of_row(gr))];
      }
    }
    resil_dx_[up].resize(max_width);
  }
  if (auto* tracer = rt_->tracer()) {
    auto& m = tracer->metrics();
    m_resil_rejected_ = m.register_metric("solver.resil_rejected",
                                          trace::MetricKind::kCounter);
    m_resil_refreshes_ = m.register_metric("solver.resil_refreshes",
                                           trace::MetricKind::kCounter);
  }
}

DistStationarySolver::SolverState DistStationarySolver::capture_state()
    const {
  SolverState s;
  s.resil_step_count = resil_step_count_;
  s.x = x_;
  s.r = r_;
  s.send_seq.resize(channels_.size());
  for (std::size_t p = 0; p < channels_.size(); ++p) {
    const auto peers =
        layout_->comm_plan().peers(static_cast<int>(p)).size();
    DSOUTH_CHECK_MSG(channels_[p].idle(),
                     "capture_state with a put phase in flight on rank "
                         << p);
    s.send_seq[p].resize(peers);
    for (std::size_t k = 0; k < peers; ++k) {
      s.send_seq[p][k] = channels_[p].sent_seq(k);
    }
  }
  s.ghost_x = ghost_x_;
  s.recv_min_seq = recv_min_seq_;
  s.last_send_step = last_send_step_;
  s.resil_stats = resil_stats_;
  capture_extra(s.extra);
  return s;
}

void DistStationarySolver::restore_state(const SolverState& s) {
  DSOUTH_CHECK_MSG(s.x.size() == x_.size() && s.r.size() == r_.size(),
                   "solver state from a different layout");
  for (std::size_t p = 0; p < x_.size(); ++p) {
    DSOUTH_CHECK(s.x[p].size() == x_[p].size());
    DSOUTH_CHECK(s.r[p].size() == r_[p].size());
  }
  DSOUTH_CHECK_MSG(s.send_seq.size() == channels_.size(),
                   "solver state from a different layout");
  // Resilient caches must match the solver's configuration: a checkpoint
  // taken with resilience on only restores into a solver with it on (the
  // caches are sized by set_resilience, which must precede the restore).
  DSOUTH_CHECK_MSG(s.ghost_x.size() == ghost_x_.size(),
                   "solver state from a different resilience configuration");
  resil_step_count_ = s.resil_step_count;
  x_ = s.x;
  r_ = s.r;
  for (std::size_t p = 0; p < channels_.size(); ++p) {
    DSOUTH_CHECK(s.send_seq[p].size() ==
                 layout_->comm_plan().peers(static_cast<int>(p)).size());
    for (std::size_t k = 0; k < s.send_seq[p].size(); ++k) {
      channels_[p].set_sent_seq(k, s.send_seq[p][k]);
    }
  }
  if (resil_.enabled) {
    DSOUTH_CHECK(s.recv_min_seq.size() == recv_min_seq_.size());
    DSOUTH_CHECK(s.last_send_step.size() == last_send_step_.size());
    DSOUTH_CHECK(s.resil_stats.size() == resil_stats_.size());
    ghost_x_ = s.ghost_x;
    recv_min_seq_ = s.recv_min_seq;
    last_send_step_ = s.last_send_step;
    resil_stats_ = s.resil_stats;
  }
  restore_extra(s.extra);
}

void DistStationarySolver::restore_extra(std::span<const double> in) {
  DSOUTH_CHECK_MSG(in.empty(),
                   "checkpoint carries extra state this solver never wrote");
}

ResilienceStats DistStationarySolver::resilience_stats() const {
  ResilienceStats total;
  for (const auto& st : resil_stats_) {
    total.rejected_corrupt += st.rejected_corrupt;
    total.rejected_stale += st.rejected_stale;
    total.refreshes_sent += st.refreshes_sent;
  }
  return total;
}

std::span<const double> DistStationarySolver::resil_accept(
    simmpi::RankContext& ctx, int p, std::size_t nbi,
    std::span<const double> payload) {
  const auto up = static_cast<std::size_t>(p);
  try {
    const wire::EnvelopeView env = wire::decode_envelope(payload);
    auto& next = recv_min_seq_[up][nbi];
    if (env.seq < next) {
      ++resil_stats_[up].rejected_stale;
      ctx.metric_add(m_resil_rejected_, 1.0);
      return {};
    }
    next = env.seq + 1;
    return env.body;
  } catch (const wire::DecodeError&) {
    // Truncated, bit-corrupted, or otherwise malformed — drop it; the
    // sender's next (or refresh) message carries the full state anyway.
    ++resil_stats_[up].rejected_corrupt;
    ctx.metric_add(m_resil_rejected_, 1.0);
    return {};
  }
}

void DistStationarySolver::resil_apply_boundary_x(
    simmpi::RankContext& ctx, int p, std::size_t nbi,
    std::span<const double> x_abs) {
  const auto up = static_cast<std::size_t>(p);
  const NeighborBlock& nb = layout_->rank(p).neighbors[nbi];
  auto& cache = ghost_x_[up][nbi];
  DSOUTH_CHECK(x_abs.size() == cache.size());
  const std::span<value_t> dx(resil_dx_[up].data(), cache.size());
  for (std::size_t g = 0; g < cache.size(); ++g) {
    dx[g] = x_abs[g] - cache[g];
    cache[g] = x_abs[g];
  }
  apply_incoming_delta(ctx, nb, dx);
}

void DistStationarySolver::resil_note_send(int p, std::size_t nbi) {
  last_send_step_[static_cast<std::size_t>(p)][nbi] = resil_step_count_;
}

void DistStationarySolver::resil_note_refresh(simmpi::RankContext& ctx,
                                              int p, std::size_t nbi) {
  resil_note_send(p, nbi);
  ++resil_stats_[static_cast<std::size_t>(p)].refreshes_sent;
  ctx.metric_add(m_resil_refreshes_, 1.0);
}

bool DistStationarySolver::resil_refresh_due(int p, std::size_t nbi) const {
  if (resil_.refresh_period <= 0) return false;
  const auto up = static_cast<std::size_t>(p);
  return resil_step_count_ - last_send_step_[up][nbi] >=
         resil_.refresh_period;
}

// The dispatch lambdas below capture exactly one reference (8 bytes) to a
// stack-local Call struct so the std::function run_epoch receives fits in
// libstdc++'s small-buffer (16 bytes) — capturing the span + this + fn
// directly would heap-allocate on every epoch and break the hot path's
// zero-allocation guarantee (tested in test_wire).
void DistStationarySolver::for_each_rank(
    const std::function<void(simmpi::RankContext&, int)>& fn) {
  struct Call {
    simmpi::Runtime* rt;
    const std::function<void(simmpi::RankContext&, int)>* fn;
  } call{rt_, &fn};
  backend_->run_epoch(layout_->num_ranks(), [&call](int p) {
    // A permanently failed rank (faults::RankKill) stops relaxing the
    // moment it dies: no phases run, its window is never absorbed, peers
    // observe silence (the runtime swallows its traffic at the fence).
    // rank_dead is constant-false without a kill plan, so fault-free runs
    // take the exact pre-elastic path.
    if (call.rt->rank_dead(p)) return;
    simmpi::RankContext ctx(*call.rt, p);
    (*call.fn)(ctx, p);
  });
}

void DistStationarySolver::for_ranks(
    std::span<const int> ranks,
    const std::function<void(simmpi::RankContext&, int)>& fn) {
  struct Call {
    const int* ranks;
    simmpi::Runtime* rt;
    const std::function<void(simmpi::RankContext&, int)>* fn;
  } call{ranks.data(), rt_, &fn};
  backend_->run_epoch(static_cast<int>(ranks.size()), [&call](int i) {
    const int p = call.ranks[static_cast<std::size_t>(i)];
    if (call.rt->rank_dead(p)) return;  // permanently failed — silent
    simmpi::RankContext ctx(*call.rt, p);
    (*call.fn)(ctx, p);
  });
}

DistStepStats DistStationarySolver::merge_rank_stats() {
  DistStepStats total;
  for (auto& st : rank_stats_) {
    total.active_ranks += st.active_ranks;
    total.relaxations += st.relaxations;
    st = DistStepStats{};
  }
  return total;
}

void DistStationarySolver::apply_incoming_delta(simmpi::RankContext& ctx,
                                                const NeighborBlock& nb,
                                                std::span<const double> dx) {
  DSOUTH_CHECK(dx.size() == nb.ghost_rows.size());
  nb.a_pq.spmv_acc(-1.0, dx, r_[static_cast<std::size_t>(ctx.rank())]);
  ctx.add_flops(2.0 * static_cast<double>(nb.a_pq.nnz()));
}

}  // namespace dsouth::dist
