#include "dist/solver_base.hpp"

#include <algorithm>
#include <cmath>

#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

DistStationarySolver::DistStationarySolver(const DistLayout& layout,
                                           simmpi::Runtime& rt,
                                           std::span<const value_t> b,
                                           std::span<const value_t> x0)
    : layout_(&layout), rt_(&rt) {
  DSOUTH_CHECK(rt.num_ranks() == layout.num_ranks());
  DSOUTH_CHECK(b.size() == static_cast<std::size_t>(layout.global_rows()));
  DSOUTH_CHECK(x0.size() == static_cast<std::size_t>(layout.global_rows()));
  x_ = layout.scatter(x0);
  // Initial residual r_p = b_p - A_pp x_p - Σ_q A_pq x_q. The setup phase
  // may read neighbor x directly (the paper's artifact likewise
  // distributes the assembled system before the solve phase).
  r_ = layout.scatter(b);
  index_t max_m = 0;
  for (int p = 0; p < layout.num_ranks(); ++p) {
    const RankData& rd = layout.rank(p);
    max_m = std::max(max_m, rd.num_rows());
    if (rd.num_rows() == 0) continue;
    rd.a_local.spmv_acc(-1.0, x_[static_cast<std::size_t>(p)],
                        r_[static_cast<std::size_t>(p)]);
    for (const auto& nb : rd.neighbors) {
      std::vector<value_t> xg(nb.ghost_rows.size());
      for (std::size_t k = 0; k < nb.ghost_rows.size(); ++k) {
        const index_t g = nb.ghost_rows[k];
        xg[k] = x_[static_cast<std::size_t>(layout.rank_of_row(g))]
                  [static_cast<std::size_t>(layout.local_of_row(g))];
      }
      nb.a_pq.spmv_acc(-1.0, xg, r_[static_cast<std::size_t>(p)]);
    }
  }
  scratch_.resize(static_cast<std::size_t>(max_m));
}

double DistStationarySolver::global_residual_norm() const {
  double sum = 0.0;
  for (const auto& rp : r_) sum += local_norm_sq(rp);
  return std::sqrt(sum);
}

std::vector<value_t> DistStationarySolver::gather_x() const {
  return layout_->gather(x_);
}

void DistStationarySolver::apply_incoming_delta(int p,
                                                const NeighborBlock& nb,
                                                std::span<const double> dx) {
  DSOUTH_CHECK(dx.size() == nb.ghost_rows.size());
  nb.a_pq.spmv_acc(-1.0, dx, r_[static_cast<std::size_t>(p)]);
  rt_->add_flops(p, 2.0 * static_cast<double>(nb.a_pq.nnz()));
}

}  // namespace dsouth::dist
