#include "dist/greedy_schwarz.hpp"

#include <cmath>

#include "dist/solver_base.hpp"
#include "dist/subdomain.hpp"
#include "util/error.hpp"
#include "util/indexed_heap.hpp"

namespace dsouth::dist {

GreedySchwarzResult run_greedy_schwarz(const DistLayout& layout,
                                       std::span<const value_t> b,
                                       std::span<const value_t> x0,
                                       const GreedySchwarzOptions& opt) {
  const int nranks = layout.num_ranks();
  DSOUTH_CHECK(b.size() == static_cast<std::size_t>(layout.global_rows()));
  DSOUTH_CHECK(x0.size() == static_cast<std::size_t>(layout.global_rows()));

  // Local state, initialized exactly like the distributed solvers. The
  // setup is per-rank work, so it runs through the backend when given one.
  auto x = layout.scatter(x0);
  auto r = layout.scatter(b);
  simmpi::SequentialBackend sequential;
  simmpi::ExecutionBackend& backend = opt.backend ? *opt.backend : sequential;
  backend.run_epoch(nranks, [&](int p) {
    subtract_a_times_x_local(layout, x, r[static_cast<std::size_t>(p)], p);
  });

  util::IndexedMaxHeap<value_t> heap(static_cast<std::size_t>(nranks));
  double total_sq = 0.0;
  for (int p = 0; p < nranks; ++p) {
    const value_t n2 = local_norm_sq(r[static_cast<std::size_t>(p)]);
    heap.push(static_cast<std::size_t>(p), n2);
    total_sq += n2;
  }

  GreedySchwarzResult result;
  result.residual_norm.push_back(std::sqrt(std::max(0.0, total_sq)));
  const index_t budget = opt.max_block_relaxations > 0
                             ? opt.max_block_relaxations
                             : static_cast<index_t>(nranks);
  std::vector<value_t> x_before, dx;
  for (index_t step = 0; step < budget; ++step) {
    const auto p = static_cast<int>(heap.top());
    if (heap.top_key() <= 0.0) break;  // exactly solved
    const RankData& rd = layout.rank(p);
    const auto up = static_cast<std::size_t>(p);
    x_before = x[up];
    local_gauss_seidel_sweep(rd.a_local, x[up], r[up]);
    result.total_row_relaxations += rd.num_rows();
    result.relaxed_rank.push_back(p);
    heap.update(up, local_norm_sq(r[up]));
    // Propagate Δx to the neighbors' residuals immediately (multiplicative
    // Schwarz: strictly sequential updates).
    dx.resize(x[up].size());
    for (std::size_t i = 0; i < dx.size(); ++i) {
      dx[i] = x[up][i] - x_before[i];
    }
    // r_q -= a_qp · Δx_p for each neighbor q. a_qp maps p-local dofs to
    // q's ghost-row ordering (q's boundary rows toward p), so translate
    // those rows back into q's local vector.
    for (const auto& nb : rd.neighbors) {
      const int q = nb.rank;
      const auto uq = static_cast<std::size_t>(q);
      std::vector<value_t> contrib(nb.ghost_rows.size(), 0.0);
      nb.a_qp.spmv(dx, contrib);
      for (std::size_t k = 0; k < nb.ghost_rows.size(); ++k) {
        const index_t g = nb.ghost_rows[k];
        r[uq][static_cast<std::size_t>(layout.local_of_row(g))] -= contrib[k];
      }
      heap.update(uq, local_norm_sq(r[uq]));
    }
    double sq = 0.0;
    for (int q = 0; q < nranks; ++q) {
      sq += heap.key_of(static_cast<std::size_t>(q));
    }
    result.residual_norm.push_back(std::sqrt(std::max(0.0, sq)));
    if (opt.target_residual > 0.0 &&
        result.residual_norm.back() <= opt.target_residual) {
      break;
    }
  }
  result.x = layout.gather(x);
  return result;
}

}  // namespace dsouth::dist
