#pragma once

/// \file harness.hpp
/// RunHarness — the assembly half of the experiment driver, factored out of
/// run_distributed so every driver that runs a distributed solver (the
/// classic driver.cpp loop, the elastic checkpoint/restart driver in
/// src/elastic) constructs and attaches the exact same stack in the exact
/// same order:
///
///   runtime → delivery policy → node topology → tracer → profiler →
///   fault schedule → backend → solver → coalescing/resilience
///
/// The order is load-bearing: the delivery policy must precede the tracer
/// (async metrics register at attach) and the solver (async_mode() must be
/// stable from construction); the tracer must precede the solver (ctors
/// register metrics). Sharing the assembly makes the elastic driver's
/// fault-free runs byte-identical to run_distributed *by construction*
/// rather than by parallel maintenance (tests/test_elastic.cpp pins it).

#include <memory>
#include <optional>

#include "dist/driver.hpp"
#include "simmpi/delivery.hpp"

namespace dsouth::dist {

class RunHarness {
 public:
  /// Build the full stack over `layout` per `opt` (see driver.hpp for the
  /// knob semantics). The layout must outlive the harness.
  RunHarness(DistMethod method, const DistLayout& layout,
             std::span<const value_t> b, std::span<const value_t> x0,
             const DistRunOptions& opt);
  ~RunHarness();

  RunHarness(const RunHarness&) = delete;
  RunHarness& operator=(const RunHarness&) = delete;

  simmpi::Runtime& runtime() { return rt_; }
  const simmpi::Runtime& runtime() const { return rt_; }
  DistStationarySolver& solver() { return *solver_; }
  trace::Tracer* tracer() { return tracer_.get(); }
  /// Null when the plan was all-zero (the fault-free fast path).
  const faults::FaultSchedule* fault_schedule() const {
    return fault_schedule_.get();
  }

  /// Fill the run-identification fields (method/num_ranks/n/backend).
  void init_result(DistRunResult& result) const;

  /// Append one series entry (residual, model time, comm costs, carried
  /// relaxations) — the caller overwrites relaxations.back() after
  /// accumulating the step's count, exactly as run_distributed always did.
  void record_state(DistRunResult& result) const;

  /// Asynchronous epilogue: deliver everything still maturing and absorb
  /// it, so final_x and the totals describe a fully-drained run. No-op
  /// under bulk-synchronous delivery (including the staleness-0
  /// degeneracy).
  void drain_if_async();

  /// Copy the end-of-run CommStats totals and the conditional summaries
  /// (fault / async / node) into `result`.
  void fill_totals(DistRunResult& result) const;

  /// End-of-run teardown: register the advisory prof.* gauges (profiler +
  /// tracer runs only), flush the tracer into result.trace_log, and detach
  /// profiler/tracer from the runtime. Call once, last.
  void finish(DistRunResult& result);

 private:
  const DistRunOptions* opt_;
  simmpi::Runtime rt_;
  std::unique_ptr<simmpi::EventDrivenPolicy> async_policy_;
  std::optional<simmpi::NodeTopology> run_topo_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<faults::FaultSchedule> fault_schedule_;
  std::unique_ptr<simmpi::ExecutionBackend> backend_;
  std::unique_ptr<DistStationarySolver> solver_;
};

}  // namespace dsouth::dist
