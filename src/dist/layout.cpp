#include "dist/layout.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "sparse/coo.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

int RankData::neighbor_index(int rank) const {
  // Neighbor lists are short (mesh-like graphs); linear scan with the
  // ascending-id invariant.
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    if (neighbors[k].rank == rank) return static_cast<int>(k);
    if (neighbors[k].rank > rank) break;
  }
  return -1;
}

DistLayout::DistLayout(const CsrMatrix& a, const graph::Partition& partition) {
  DSOUTH_CHECK(a.rows() == a.cols());
  DSOUTH_CHECK(partition.is_valid(a.rows()));
  n_ = a.rows();
  const int num_parts = static_cast<int>(partition.num_parts);
  ranks_.resize(static_cast<std::size_t>(num_parts));
  rank_of_.resize(static_cast<std::size_t>(n_));
  local_of_.assign(static_cast<std::size_t>(n_), -1);

  for (index_t i = 0; i < n_; ++i) {
    const auto p = static_cast<int>(partition.part[static_cast<std::size_t>(i)]);
    rank_of_[static_cast<std::size_t>(i)] = p;
    auto& rows = ranks_[static_cast<std::size_t>(p)].rows;
    local_of_[static_cast<std::size_t>(i)] =
        static_cast<index_t>(rows.size());
    rows.push_back(i);  // ascending because i ascends
  }

  // Per-rank assembly. Collect local-block entries and per-neighbor
  // coupling entries in one pass over the owned rows.
  for (int p = 0; p < num_parts; ++p) {
    RankData& rd = ranks_[static_cast<std::size_t>(p)];
    const auto m = static_cast<index_t>(rd.rows.size());

    // Pass 1: discover neighbor ranks and their coupled (ghost) rows.
    std::map<int, std::vector<index_t>> ghost_sets;  // rank -> global rows
    for (index_t li = 0; li < m; ++li) {
      const index_t gi = rd.rows[static_cast<std::size_t>(li)];
      for (index_t gj : a.row_cols(gi)) {
        const int q = rank_of_[static_cast<std::size_t>(gj)];
        if (q != p) ghost_sets[q].push_back(gj);
      }
    }
    for (auto& [q, ghosts] : ghost_sets) {
      std::sort(ghosts.begin(), ghosts.end());
      ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    }

    // Pass 2: build the local block and per-neighbor a_pq blocks.
    sparse::CooBuilder local(m, m);
    std::map<int, sparse::CooBuilder> pq;  // rank -> coupling block builder
    std::map<int, std::vector<index_t>> send_rows;  // rank -> local rows
    for (auto& [q, ghosts] : ghost_sets) {
      pq.emplace(q, sparse::CooBuilder(m, static_cast<index_t>(ghosts.size())));
    }
    for (index_t li = 0; li < m; ++li) {
      const index_t gi = rd.rows[static_cast<std::size_t>(li)];
      auto cols = a.row_cols(gi);
      auto vals = a.row_vals(gi);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t gj = cols[k];
        const int q = rank_of_[static_cast<std::size_t>(gj)];
        if (q == p) {
          local.add(li, local_of_[static_cast<std::size_t>(gj)], vals[k]);
        } else {
          const auto& ghosts = ghost_sets[q];
          auto it = std::lower_bound(ghosts.begin(), ghosts.end(), gj);
          DSOUTH_ASSERT(it != ghosts.end() && *it == gj);
          pq.at(q).add(li, static_cast<index_t>(it - ghosts.begin()), vals[k]);
          auto& sr = send_rows[q];
          if (sr.empty() || sr.back() != li) sr.push_back(li);
        }
      }
    }

    rd.a_local = local.to_csr();
    rd.neighbors.reserve(ghost_sets.size());
    for (auto& [q, ghosts] : ghost_sets) {
      NeighborBlock nb;
      nb.rank = q;
      nb.ghost_rows = std::move(ghosts);
      nb.send_rows_local = std::move(send_rows[q]);  // ascending by li
      nb.a_pq = pq.at(q).to_csr();
      nb.a_qp = nb.a_pq.transpose();
      rd.neighbors.push_back(std::move(nb));  // map iterates ascending rank
    }
  }

  // Derive the wire CommPlan from the neighbor blocks, one Peer per
  // NeighborBlock in the same (ascending-rank) order so solvers can index
  // channels and neighbors with the same k.
  std::vector<std::vector<wire::CommPlan::Peer>> peers(ranks_.size());
  for (std::size_t p = 0; p < ranks_.size(); ++p) {
    peers[p].reserve(ranks_[p].neighbors.size());
    for (const auto& nb : ranks_[p].neighbors) {
      peers[p].emplace_back(nb.rank, nb.send_rows_local.size(),
                            nb.ghost_rows.size());
    }
  }
  plan_ = wire::CommPlan(std::move(peers));
}

void DistLayout::set_node_topology(simmpi::NodeTopology topo) {
  DSOUTH_CHECK(topo.num_ranks() == num_ranks());
  node_topo_.emplace(std::move(topo));
  node_plan_ = wire::NodeCommPlan(plan_, *node_topo_);
}

const wire::NodeCommPlan& DistLayout::node_comm_plan() const {
  DSOUTH_CHECK_MSG(node_topo_.has_value(),
                   "node_comm_plan() without a node topology attached");
  return node_plan_;
}

const RankData& DistLayout::rank(int p) const {
  DSOUTH_CHECK(p >= 0 && p < num_ranks());
  return ranks_[static_cast<std::size_t>(p)];
}

int DistLayout::rank_of_row(index_t global_row) const {
  DSOUTH_CHECK(global_row >= 0 && global_row < n_);
  return rank_of_[static_cast<std::size_t>(global_row)];
}

index_t DistLayout::local_of_row(index_t global_row) const {
  DSOUTH_CHECK(global_row >= 0 && global_row < n_);
  return local_of_[static_cast<std::size_t>(global_row)];
}

std::vector<std::vector<value_t>> DistLayout::scatter(
    std::span<const value_t> global) const {
  DSOUTH_CHECK(global.size() == static_cast<std::size_t>(n_));
  std::vector<std::vector<value_t>> out(ranks_.size());
  for (std::size_t p = 0; p < ranks_.size(); ++p) {
    const auto& rows = ranks_[p].rows;
    out[p].resize(rows.size());
    for (std::size_t li = 0; li < rows.size(); ++li) {
      out[p][li] = global[static_cast<std::size_t>(rows[li])];
    }
  }
  return out;
}

std::vector<value_t> DistLayout::gather(
    const std::vector<std::vector<value_t>>& local) const {
  DSOUTH_CHECK(local.size() == ranks_.size());
  std::vector<value_t> out(static_cast<std::size_t>(n_));
  for (std::size_t p = 0; p < ranks_.size(); ++p) {
    const auto& rows = ranks_[p].rows;
    DSOUTH_CHECK(local[p].size() == rows.size());
    for (std::size_t li = 0; li < rows.size(); ++li) {
      out[static_cast<std::size_t>(rows[li])] = local[p][li];
    }
  }
  return out;
}

bool DistLayout::validate(const CsrMatrix& a) const {
  // Row ownership is a partition of [0, n).
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  for (int p = 0; p < num_ranks(); ++p) {
    const RankData& rd = rank(p);
    for (index_t g : rd.rows) {
      if (g < 0 || g >= n_ || seen[static_cast<std::size_t>(g)]) return false;
      seen[static_cast<std::size_t>(g)] = 1;
      if (rank_of_row(g) != p) return false;
    }
    // Block shapes.
    if (rd.a_local.rows() != rd.num_rows() ||
        rd.a_local.cols() != rd.num_rows()) {
      return false;
    }
    for (const auto& nb : rd.neighbors) {
      if (nb.rank == p || nb.rank < 0 || nb.rank >= num_ranks()) return false;
      if (nb.a_pq.rows() != rd.num_rows()) return false;
      if (nb.a_pq.cols() != static_cast<index_t>(nb.ghost_rows.size())) {
        return false;
      }
      if (nb.a_qp.rows() != static_cast<index_t>(nb.ghost_rows.size())) {
        return false;
      }
      if (nb.a_qp.cols() != rd.num_rows()) return false;
      // Mirrored channel lists: q's send rows == p's ghost rows for q.
      const RankData& qd = rank(nb.rank);
      const int back = qd.neighbor_index(p);
      if (back < 0) return false;
      const auto& qnb = qd.neighbors[static_cast<std::size_t>(back)];
      if (qnb.ghost_rows.size() != nb.send_rows_local.size()) return false;
      for (std::size_t k = 0; k < nb.send_rows_local.size(); ++k) {
        if (qnb.ghost_rows[k] !=
            rd.rows[static_cast<std::size_t>(nb.send_rows_local[k])]) {
          return false;
        }
      }
      // Values of a_pq match the global matrix.
      for (index_t li = 0; li < nb.a_pq.rows(); ++li) {
        auto cols = nb.a_pq.row_cols(li);
        auto vals = nb.a_pq.row_vals(li);
        const index_t gi = rd.rows[static_cast<std::size_t>(li)];
        for (std::size_t k = 0; k < cols.size(); ++k) {
          const index_t gj = nb.ghost_rows[static_cast<std::size_t>(cols[k])];
          if (std::abs(a.at(gi, gj) - vals[k]) > 0.0) return false;
        }
      }
    }
  }
  for (char s : seen) {
    if (!s) return false;
  }
  return true;
}

}  // namespace dsouth::dist
