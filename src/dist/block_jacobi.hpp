#pragma once

/// \file block_jacobi.hpp
/// Block Jacobi (paper Algorithm 1) — the baseline multigrid smoother the
/// paper positions Distributed Southwell against. Every parallel step,
/// every rank relaxes its subdomain with one local Gauss–Seidel sweep
/// ("Hybrid Gauss–Seidel" / "Processor Block Gauss–Seidel") and writes its
/// boundary solution updates to every neighbor's window. One epoch per
/// step.

#include "dist/solver_base.hpp"

namespace dsouth::dist {

class BlockJacobi final : public DistStationarySolver {
 public:
  BlockJacobi(const DistLayout& layout, simmpi::Runtime& rt,
              std::span<const value_t> b, std::span<const value_t> x0);

  const char* name() const override { return "BlockJacobi"; }

  // Stepping hooks (solver_base.hpp): one epoch, every rank relaxes.
  void rank_send(int e, simmpi::RankContext& ctx, int p) override;
  void rank_async_send(simmpi::RankContext& ctx, int p) override;
  void absorb_payload(simmpi::RankContext& ctx, int p, std::size_t nbi,
                      std::span<const double> payload) override;

 private:
  // Message p -> q: payload = Δx at p's boundary rows w.r.t. q, ordered by
  // the shared channel convention (see layout.hpp).
  void rank_relax(simmpi::RankContext& ctx, int p);

  std::vector<std::vector<value_t>> x_before_;  // per-rank sweep snapshot
};

}  // namespace dsouth::dist
