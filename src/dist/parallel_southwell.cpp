#include "dist/parallel_southwell.hpp"

#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

ParallelSouthwell::ParallelSouthwell(const DistLayout& layout,
                                     simmpi::Runtime& rt,
                                     std::span<const value_t> b,
                                     std::span<const value_t> x0,
                                     bool explicit_residual_updates)
    : DistStationarySolver(layout, rt, b, x0),
      explicit_residual_updates_(explicit_residual_updates) {
  const int nranks = layout.num_ranks();
  gamma2_.resize(static_cast<std::size_t>(nranks));
  advertised2_.resize(static_cast<std::size_t>(nranks));
  // Setup exchange: neighbors start with exact knowledge (Alg. 2 line 5).
  for (int p = 0; p < nranks; ++p) {
    advertised2_[static_cast<std::size_t>(p)] =
        local_norm_sq(r_[static_cast<std::size_t>(p)]);
  }
  for (int p = 0; p < nranks; ++p) {
    const RankData& rd = layout.rank(p);
    auto& g = gamma2_[static_cast<std::size_t>(p)];
    g.resize(rd.neighbors.size());
    for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
      g[k] = advertised2_[static_cast<std::size_t>(rd.neighbors[k].rank)];
    }
  }
}

void ParallelSouthwell::capture_extra(std::vector<double>& out) const {
  for (int p = 0; p < layout_->num_ranks(); ++p) {
    const auto up = static_cast<std::size_t>(p);
    out.push_back(advertised2_[up]);
    out.insert(out.end(), gamma2_[up].begin(), gamma2_[up].end());
  }
}

void ParallelSouthwell::restore_extra(std::span<const double> in) {
  std::size_t i = 0;
  for (int p = 0; p < layout_->num_ranks(); ++p) {
    const auto up = static_cast<std::size_t>(p);
    DSOUTH_CHECK_MSG(i + 1 + gamma2_[up].size() <= in.size(),
                     "truncated PS checkpoint stream");
    advertised2_[up] = in[i++];
    for (auto& g : gamma2_[up]) g = in[i++];
  }
  DSOUTH_CHECK_MSG(i == in.size(), "oversized PS checkpoint stream");
}

void ParallelSouthwell::rank_relax(simmpi::RankContext& ctx, int p) {
  const auto prof_relax = prof_phase(p, prof::PhaseId::kRelax);
  const RankData& rd = layout_->rank(p);
  if (rd.num_rows() == 0) return;
  const auto up = static_cast<std::size_t>(p);
  const value_t norm2 = local_norm_sq(r_[up]);
  ctx.add_flops(2.0 * static_cast<double>(rd.num_rows()));
  if (norm2 <= 0.0) return;
  for (value_t g : gamma2_[up]) {
    if (g > norm2) return;  // a neighbor is (believed) worse off
  }

  auto& xp = x_[up];
  auto& rp = r_[up];
  auto& snap = scratch_[up];
  snap.assign(xp.begin(), xp.end());  // snapshot for Δx
  const double flops = local_gauss_seidel_sweep(rd.a_local, xp, rp);
  ctx.add_flops(flops);
  ++rank_stats_[up].active_ranks;
  rank_stats_[up].relaxations += rd.num_rows();
  trace_relax(ctx, rd.num_rows());
  const value_t norm2_new = local_norm_sq(rp);
  advertised2_[up] = norm2_new;
  const auto prof_encode = prof_phase(p, prof::PhaseId::kEncode);
  auto& ch = channels_[up];
  for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
    const auto& nb = rd.neighbors[k];
    auto rec = ch.open(ctx, k, wire::RecordType::kNormUpdate, norm2_new);
    for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
      const auto li = static_cast<std::size_t>(nb.send_rows_local[s]);
      // Resilient mode ships absolute boundary x (self-healing across
      // message loss — solver_base.hpp); default mode ships the delta.
      rec.dx[s] = resilient() ? xp[li] : xp[li] - snap[li];
    }
    if (resilient()) resil_note_send(p, k);
  }
  ch.flush(ctx);
}

void ParallelSouthwell::rank_residual_update(simmpi::RankContext& ctx,
                                             int p) {
  const RankData& rd = layout_->rank(p);
  if (rd.num_rows() == 0 || rd.neighbors.empty()) return;
  const auto up = static_cast<std::size_t>(p);
  const value_t norm2 = local_norm_sq(r_[up]);
  ctx.add_flops(2.0 * static_cast<double>(rd.num_rows()));
  const bool norm_changed = norm2 != advertised2_[up];
  const auto prof_encode = prof_phase(p, prof::PhaseId::kEncode);
  auto& ch = channels_[up];
  if (!resilient()) {
    if (!norm_changed) return;
    advertised2_[up] = norm2;
    for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
      ch.open(ctx, k, wire::RecordType::kResidualNorm, norm2);
    }
    ch.flush(ctx);
    return;
  }
  // Resilient mode: a channel silent for >= refresh_period steps gets a
  // full-state NormUpdate (absolute boundary x + current norm) even when
  // the norm is unchanged — this bounds the staleness a dropped message
  // can cause in both the neighbor's Γ entry and its boundary-x cache.
  const auto& xp = x_[up];
  for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
    if (resil_refresh_due(p, k)) {
      const auto& nb = rd.neighbors[k];
      auto rec = ch.open(ctx, k, wire::RecordType::kNormUpdate, norm2);
      for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
        rec.dx[s] = xp[static_cast<std::size_t>(nb.send_rows_local[s])];
      }
      resil_note_refresh(ctx, p, k);
    } else if (norm_changed) {
      ch.open(ctx, k, wire::RecordType::kResidualNorm, norm2);
    }
  }
  if (norm_changed) advertised2_[up] = norm2;
  ch.flush(ctx);
}

void ParallelSouthwell::absorb_payload(simmpi::RankContext& ctx, int p,
                                       std::size_t nbi,
                                       std::span<const double> payload) {
  const auto up = static_cast<std::size_t>(p);
  const auto& nb = layout_->rank(p).neighbors[nbi];
  if (resilient()) {
    const auto body = resil_accept(ctx, p, nbi, payload);
    if (body.empty()) return;
    const auto rec =
        wire::decode_record(wire::Family::kNorm, body, nb.ghost_rows.size());
    gamma2_[up][nbi] = rec.norm2;
    if (rec.type == wire::RecordType::kNormUpdate) {
      resil_apply_boundary_x(ctx, p, nbi, rec.dx);
    }
    return;
  }
  wire::for_each_record(
      wire::Family::kNorm, payload, nb.ghost_rows.size(),
      [&](const wire::Record& rec) {
        // Both types carry the sender's new norm; only NormUpdate
        // piggy-backs boundary Δx.
        gamma2_[up][nbi] = rec.norm2;
        if (rec.type == wire::RecordType::kNormUpdate) {
          apply_incoming_delta(ctx, nb, rec.dx);
        }
      });
}

void ParallelSouthwell::rank_send(int e, simmpi::RankContext& ctx, int p) {
  if (e == 0) {
    // ---- Epoch A: relax where the Parallel Southwell criterion holds.
    rank_relax(ctx, p);
    return;
  }
  // ---- Epoch B: explicit residual updates wherever the norm changed
  // (Alg. 2 lines 19-21). This is the traffic Distributed Southwell cuts.
  if (explicit_residual_updates_) rank_residual_update(ctx, p);
}

void ParallelSouthwell::rank_async_send(simmpi::RankContext& ctx, int p) {
  // Relax where the criterion holds on the (staleness-bounded) Γ view and
  // fold the explicit residual updates into the SAME epoch — after
  // relaxing, the advertised norm is already current, so the update only
  // fires when absorption alone changed the norm (or a resilient refresh
  // is due).
  rank_relax(ctx, p);
  if (explicit_residual_updates_) rank_residual_update(ctx, p);
}

}  // namespace dsouth::dist
