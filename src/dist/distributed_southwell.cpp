#include "dist/distributed_southwell.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::dist {

DistributedSouthwell::DistributedSouthwell(
    const DistLayout& layout, simmpi::Runtime& rt, std::span<const value_t> b,
    std::span<const value_t> x0, const DistributedSouthwellOptions& opt)
    : DistStationarySolver(layout, rt, b, x0), opt_(opt) {
  const int nranks = layout.num_ranks();
  gamma2_.resize(static_cast<std::size_t>(nranks));
  gtilde2_.resize(static_cast<std::size_t>(nranks));
  ghost_.resize(static_cast<std::size_t>(nranks));
  dz_scratch_.resize(static_cast<std::size_t>(nranks));
  corrections_sent_.assign(static_cast<std::size_t>(nranks), 0);
  deferred_sends_.assign(static_cast<std::size_t>(nranks), 0);
  if (auto* tracer = rt.tracer()) {
    auto& m = tracer->metrics();
    m_corrections_sent_ = m.register_metric("ds.corrections_sent",
                                            trace::MetricKind::kCounter);
    m_deferred_sends_ =
        m.register_metric("ds.deferred_sends", trace::MetricKind::kCounter);
  }
  if (opt_.send_threshold > 0.0) {
    pending_dx_.resize(static_cast<std::size_t>(nranks));
    for (int p = 0; p < nranks; ++p) {
      const RankData& rd = layout.rank(p);
      auto& pend = pending_dx_[static_cast<std::size_t>(p)];
      pend.resize(rd.neighbors.size());
      for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
        pend[k].assign(rd.neighbors[k].send_rows_local.size(), 0.0);
      }
    }
  }
  // Setup exchange (Alg. 3 lines 5-9): exact norms, exact ghost layers,
  // and consistent Γ̃ (everyone knows everyone's true norm at k=0).
  std::vector<value_t> norms2(static_cast<std::size_t>(nranks));
  for (int p = 0; p < nranks; ++p) {
    norms2[static_cast<std::size_t>(p)] =
        local_norm_sq(r_[static_cast<std::size_t>(p)]);
  }
  for (int p = 0; p < nranks; ++p) {
    const RankData& rd = layout.rank(p);
    const auto up = static_cast<std::size_t>(p);
    gamma2_[up].resize(rd.neighbors.size());
    gtilde2_[up].resize(rd.neighbors.size());
    ghost_[up].resize(rd.neighbors.size());
    for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
      const auto& nb = rd.neighbors[k];
      gamma2_[up][k] = norms2[static_cast<std::size_t>(nb.rank)];
      gtilde2_[up][k] = norms2[up];
      auto& z = ghost_[up][k];
      z.resize(nb.ghost_rows.size());
      for (std::size_t g = 0; g < nb.ghost_rows.size(); ++g) {
        const index_t gr = nb.ghost_rows[g];
        z[g] = r_[static_cast<std::size_t>(layout.rank_of_row(gr))]
                 [static_cast<std::size_t>(layout.local_of_row(gr))];
      }
    }
  }
}

void DistributedSouthwell::set_resilience(const ResilienceOptions& opt) {
  DSOUTH_CHECK_MSG(!(opt.enabled && opt_.send_threshold > 0.0),
                   "resilience is incompatible with send_threshold "
                   "(deferred sends would ship partial boundary state)");
  DistStationarySolver::set_resilience(opt);
}

void DistributedSouthwell::capture_extra(std::vector<double>& out) const {
  out.push_back(
      std::bit_cast<double>(static_cast<std::uint64_t>(step_count_)));
  out.push_back(heartbeat_ ? 1.0 : 0.0);
  for (int p = 0; p < layout_->num_ranks(); ++p) {
    const auto up = static_cast<std::size_t>(p);
    out.push_back(std::bit_cast<double>(corrections_sent_[up]));
    out.push_back(std::bit_cast<double>(deferred_sends_[up]));
    out.insert(out.end(), gamma2_[up].begin(), gamma2_[up].end());
    out.insert(out.end(), gtilde2_[up].begin(), gtilde2_[up].end());
    for (const auto& z : ghost_[up]) {
      out.insert(out.end(), z.begin(), z.end());
    }
    if (opt_.send_threshold > 0.0) {
      for (const auto& pend : pending_dx_[up]) {
        out.insert(out.end(), pend.begin(), pend.end());
      }
    }
  }
}

void DistributedSouthwell::restore_extra(std::span<const double> in) {
  std::size_t i = 0;
  const auto take = [&in, &i](std::size_t n) {
    DSOUTH_CHECK_MSG(i + n <= in.size(), "truncated DS checkpoint stream");
    auto s = in.subspan(i, n);
    i += n;
    return s;
  };
  step_count_ =
      static_cast<index_t>(std::bit_cast<std::uint64_t>(take(1)[0]));
  heartbeat_ = take(1)[0] != 0.0;
  for (int p = 0; p < layout_->num_ranks(); ++p) {
    const auto up = static_cast<std::size_t>(p);
    corrections_sent_[up] = std::bit_cast<std::uint64_t>(take(1)[0]);
    deferred_sends_[up] = std::bit_cast<std::uint64_t>(take(1)[0]);
    const auto g = take(gamma2_[up].size());
    std::copy(g.begin(), g.end(), gamma2_[up].begin());
    const auto gt = take(gtilde2_[up].size());
    std::copy(gt.begin(), gt.end(), gtilde2_[up].begin());
    for (auto& z : ghost_[up]) {
      const auto zs = take(z.size());
      std::copy(zs.begin(), zs.end(), z.begin());
    }
    if (opt_.send_threshold > 0.0) {
      for (auto& pend : pending_dx_[up]) {
        const auto ps = take(pend.size());
        std::copy(ps.begin(), ps.end(), pend.begin());
      }
    }
  }
  DSOUTH_CHECK_MSG(i == in.size(), "oversized DS checkpoint stream");
}

std::uint64_t DistributedSouthwell::corrections_sent() const {
  return std::accumulate(corrections_sent_.begin(), corrections_sent_.end(),
                         std::uint64_t{0});
}

std::uint64_t DistributedSouthwell::deferred_sends() const {
  return std::accumulate(deferred_sends_.begin(), deferred_sends_.end(),
                         std::uint64_t{0});
}

void DistributedSouthwell::rank_relax(simmpi::RankContext& ctx, int p) {
  const auto prof_relax = prof_phase(p, prof::PhaseId::kRelax);
  const RankData& rd = layout_->rank(p);
  if (rd.num_rows() == 0) return;
  const auto up = static_cast<std::size_t>(p);
  const value_t norm2 = local_norm_sq(r_[up]);
  ctx.add_flops(2.0 * static_cast<double>(rd.num_rows()));
  if (norm2 <= 0.0) return;
  for (value_t g : gamma2_[up]) {
    if (g > norm2) return;  // a Γ estimate says a neighbor is worse off
  }

  auto& xp = x_[up];
  auto& rp = r_[up];
  auto& snap = scratch_[up];
  snap.assign(xp.begin(), xp.end());  // snapshot for Δx
  const double flops = local_gauss_seidel_sweep(rd.a_local, xp, rp);
  ctx.add_flops(flops);
  ++rank_stats_[up].active_ranks;
  rank_stats_[up].relaxations += rd.num_rows();
  trace_relax(ctx, rd.num_rows());
  const value_t norm2_new = local_norm_sq(rp);
  // Δx over the full local vector (a_qp columns only touch boundary rows,
  // and message payloads pick out the per-neighbor boundary entries).
  for (std::size_t li = 0; li < xp.size(); ++li) {
    snap[li] = xp[li] - snap[li];
  }
  const auto dx_full = std::span<const value_t>(snap.data(), xp.size());
  const auto prof_encode = prof_phase(p, prof::PhaseId::kEncode);
  auto& dz = dz_scratch_[up];
  auto& ch = channels_[up];
  for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
    const auto& nb = rd.neighbors[k];
    // Local estimate maintenance: z_q -= a_qp · Δx_p, and fold the ghost
    // change into the Γ[q] estimate (all with local data only).
    if (opt_.enable_local_estimates) {
      auto& z = ghost_[up][k];
      dz.assign(z.size(), 0.0);
      nb.a_qp.spmv(dx_full, dz);
      ctx.add_flops(2.0 * static_cast<double>(nb.a_qp.nnz()));
      value_t old_sq = 0.0, new_sq = 0.0;
      for (std::size_t g = 0; g < z.size(); ++g) {
        old_sq += z[g] * z[g];
        z[g] -= dz[g];
        new_sq += z[g] * z[g];
      }
      gamma2_[up][k] =
          std::max<value_t>(0.0, gamma2_[up][k] + new_sq - old_sq);
    }
    // send_threshold extension: accumulate this relaxation's boundary
    // Δx and defer the message while the accumulated change is small
    // relative to the local residual norm.
    if (opt_.send_threshold > 0.0) {
      auto& pend = pending_dx_[up][k];
      value_t acc_sq = 0.0;
      for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
        pend[s] += dx_full[static_cast<std::size_t>(nb.send_rows_local[s])];
        acc_sq += pend[s] * pend[s];
      }
      if (acc_sq <= opt_.send_threshold * opt_.send_threshold * norm2_new) {
        ++deferred_sends_[up];
        ctx.metric_add(m_deferred_sends_, 1.0);
        continue;  // no message this step; Γ̃ untouched (q learns nothing)
      }
      gtilde2_[up][k] = norm2_new;
      auto rec = ch.open(ctx, k, wire::RecordType::kSolveUpdate, norm2_new,
                         gamma2_[up][k]);
      std::copy(pend.begin(), pend.end(), rec.dx.begin());
      for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
        rec.rb[s] = rp[static_cast<std::size_t>(nb.send_rows_local[s])];
      }
      std::fill(pend.begin(), pend.end(), 0.0);
      continue;
    }
    gtilde2_[up][k] = norm2_new;  // the message tells q our exact norm
    auto rec = ch.open(ctx, k, wire::RecordType::kSolveUpdate, norm2_new,
                       gamma2_[up][k]);
    for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
      const auto li = static_cast<std::size_t>(nb.send_rows_local[s]);
      // Resilient mode ships absolute boundary x (self-healing across
      // message loss — solver_base.hpp); default mode ships the delta.
      rec.dx[s] = resilient() ? xp[li] : dx_full[li];
      rec.rb[s] = rp[li];
    }
    if (resilient()) resil_note_send(p, k);
  }
  ch.flush(ctx);
}

void DistributedSouthwell::rank_correct(simmpi::RankContext& ctx, int p,
                                        bool heartbeat) {
  const RankData& rd = layout_->rank(p);
  if (rd.num_rows() == 0 || rd.neighbors.empty()) return;
  const auto up = static_cast<std::size_t>(p);
  const value_t norm2 = local_norm_sq(r_[up]);
  ctx.add_flops(2.0 * static_cast<double>(rd.num_rows()));
  const auto prof_encode = prof_phase(p, prof::PhaseId::kEncode);
  const auto& rp = r_[up];
  const auto& xp = x_[up];
  auto& ch = channels_[up];
  for (std::size_t k = 0; k < rd.neighbors.size(); ++k) {
    const auto& nb = rd.neighbors[k];
    // Resilient mode: a channel silent for >= refresh_period steps gets a
    // full SolveUpdate (absolute boundary x, exact boundary residuals,
    // norms) regardless of the Γ̃ condition — bounding the staleness a
    // dropped message can cause in the neighbor's estimates and cache.
    if (resilient() && resil_refresh_due(p, k)) {
      auto rec = ch.open(ctx, k, wire::RecordType::kSolveUpdate, norm2,
                         gamma2_[up][k]);
      for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
        const auto li = static_cast<std::size_t>(nb.send_rows_local[s]);
        rec.dx[s] = xp[li];
        rec.rb[s] = rp[li];
      }
      gtilde2_[up][k] = norm2;  // it also corrects any overestimate
      resil_note_refresh(ctx, p, k);
      continue;
    }
    const bool must_heartbeat = heartbeat && norm2 > 0.0;
    if (!(norm2 < gtilde2_[up][k]) && !must_heartbeat) continue;
    auto rec = ch.open(ctx, k, wire::RecordType::kCorrection, norm2,
                       gamma2_[up][k]);
    for (std::size_t s = 0; s < nb.send_rows_local.size(); ++s) {
      rec.rb[s] = rp[static_cast<std::size_t>(nb.send_rows_local[s])];
    }
    gtilde2_[up][k] = norm2;
    ++corrections_sent_[up];
    ctx.metric_add(m_corrections_sent_, 1.0);
  }
  ch.flush(ctx);
}

void DistributedSouthwell::absorb_payload(simmpi::RankContext& ctx, int p,
                                          std::size_t nbi,
                                          std::span<const double> payload) {
  const auto up = static_cast<std::size_t>(p);
  const auto& nb = layout_->rank(p).neighbors[nbi];
  if (resilient()) {
    const auto body = resil_accept(ctx, p, nbi, payload);
    if (body.empty()) return;
    const auto rec = wire::decode_record(wire::Family::kEstimate, body,
                                         nb.ghost_rows.size());
    if (rec.type == wire::RecordType::kSolveUpdate) {
      resil_apply_boundary_x(ctx, p, nbi, rec.dx);
    }
    std::copy(rec.rb.begin(), rec.rb.end(), ghost_[up][nbi].begin());
    gamma2_[up][nbi] = rec.norm2;
    gtilde2_[up][nbi] = rec.gamma2;
    return;
  }
  // Decode against the channel's receive width (the codec validates
  // every length); a frame yields each coalesced record in send order.
  wire::for_each_record(
      wire::Family::kEstimate, payload, nb.ghost_rows.size(),
      [&](const wire::Record& rec) {
        if (rec.type == wire::RecordType::kSolveUpdate) {
          // SOLVE: Δx + exact boundary residuals.
          apply_incoming_delta(ctx, nb, rec.dx);
        }
        // Both types carry the sender's exact boundary residuals.
        std::copy(rec.rb.begin(), rec.rb.end(), ghost_[up][nbi].begin());
        gamma2_[up][nbi] = rec.norm2;
        gtilde2_[up][nbi] = rec.gamma2;
      });
}

void DistributedSouthwell::begin_step() {
  DistStationarySolver::begin_step();
  // Epoch A never reads the step counter, so advancing it here (instead of
  // between the epochs, as the pre-hook stepping did) changes nothing; the
  // heartbeat flag epoch B reads is computed from the same value as ever.
  ++step_count_;
  heartbeat_ =
      opt_.heartbeat_period > 0 && step_count_ % opt_.heartbeat_period == 0;
}

void DistributedSouthwell::rank_send(int e, simmpi::RankContext& ctx, int p) {
  if (e == 0) {
    // ---- Epoch A: relax where ‖r_p‖² is maximal among the Γ *estimates*.
    rank_relax(ctx, p);
    return;
  }
  // ---- Epoch B: deadlock avoidance — correct only overestimates of us.
  if (opt_.enable_corrections) rank_correct(ctx, p, heartbeat_);
}

void DistributedSouthwell::rank_async_send(simmpi::RankContext& ctx, int p) {
  // Relax where ‖r_p‖² is maximal among the (staleness-bounded) Γ
  // estimates, and fold the deadlock-avoidance corrections into the SAME
  // epoch. Ordering keeps Γ̃ correct: rank_relax sets Γ̃[q] = norm2_new
  // for every neighbor it messaged, so rank_correct right after only
  // fires for genuinely uncorrected overestimates. Out-of-order arrival
  // is handled by the resilient absorb path (sequence gating +
  // absolute-x encoding) the driver enables for asynchronous runs.
  rank_relax(ctx, p);
  if (opt_.enable_corrections) rank_correct(ctx, p, heartbeat_);
}

}  // namespace dsouth::dist
