#pragma once

/// \file subdomain.hpp
/// Local subdomain kernels shared by the distributed solvers, re-exported
/// from the batched kernels layer (kernels/kernels.hpp) where they now
/// live. All paper experiments relax a subdomain with exactly one
/// Gauss–Seidel sweep ("when a process updates, a single Gauss-Seidel
/// sweep is carried out on the subdomain", §4.2); the sweep works purely
/// on the locally-exact residual, so no ghost copy of x is ever needed.

#include <span>

#include "kernels/kernels.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::dist {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

/// One Gauss–Seidel sweep over the local block (kernels::gs_sweep).
inline double local_gauss_seidel_sweep(const CsrMatrix& a_local,
                                       std::span<value_t> x,
                                       std::span<value_t> r) {
  return kernels::gs_sweep(a_local, x, r);
}

/// Squared 2-norm of the local residual (kernels::norm_sq).
inline value_t local_norm_sq(std::span<const value_t> r) {
  return kernels::norm_sq(r);
}

}  // namespace dsouth::dist
