#pragma once

/// \file subdomain.hpp
/// Local subdomain kernels shared by the distributed solvers. All paper
/// experiments relax a subdomain with exactly one Gauss–Seidel sweep
/// ("when a process updates, a single Gauss-Seidel sweep is carried out on
/// the subdomain", §4.2); the sweep here works purely on the locally-exact
/// residual, so no ghost copy of x is ever needed.

#include <span>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::dist {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

/// One Gauss–Seidel sweep over the local block: for each local row i in
/// ascending order, x_i += r_i / a_ii and r_j -= a_ji δ for local j
/// (symmetric block ⇒ column i is row i). Returns the flop count charged
/// to the machine model (≈ 2·nnz + 2·m).
double local_gauss_seidel_sweep(const CsrMatrix& a_local,
                                std::span<value_t> x, std::span<value_t> r);

/// Squared 2-norm of the local residual (the quantity the Southwell
/// methods exchange; squared to avoid needless square roots).
value_t local_norm_sq(std::span<const value_t> r);

}  // namespace dsouth::dist
