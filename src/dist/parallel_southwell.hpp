#pragma once

/// \file parallel_southwell.hpp
/// Block Parallel Southwell in distributed memory (paper Algorithm 2).
///
/// The method keeps every rank's knowledge of its neighbors' residual norms
/// (Γ) *exact* — that is its defining property and its communication
/// burden. Each parallel step is two epochs:
///
///   Epoch A — ranks whose ‖r_p‖ is maximal in {Γ_p, ‖r_p‖} relax their
///     subdomain and write (Δx boundary values, piggy-backed new ‖r_p‖²)
///     to every neighbor.
///   Epoch B — any rank whose norm changed since it last advertised it
///     (because updates arrived) broadcasts an explicit residual update to
///     every neighbor. These explicit updates are what Distributed
///     Southwell eliminates (paper Table 3).
///
/// Note this is Algorithm 2 of the paper, NOT the deadlock-prone scheme of
/// Ref. [18] (which skipped Epoch B and "deadlocks for all our test
/// problems", §4.2) — that scheme is available as an ablation switch.

#include "dist/solver_base.hpp"

namespace dsouth::dist {

class ParallelSouthwell final : public DistStationarySolver {
 public:
  /// `explicit_residual_updates = false` reproduces the Ref. [18] scheme
  /// (piggy-backed norms only), which stalls — used by the ablation bench.
  ParallelSouthwell(const DistLayout& layout, simmpi::Runtime& rt,
                    std::span<const value_t> b, std::span<const value_t> x0,
                    bool explicit_residual_updates = true);

  const char* name() const override { return "ParallelSouthwell"; }

  // Stepping hooks (solver_base.hpp): epoch 0 relaxes where the criterion
  // holds, epoch 1 broadcasts explicit residual updates (the Epoch B
  // fence/absorb runs even with the ablation switch off, as always).
  int step_epochs() const override { return 2; }
  void rank_send(int e, simmpi::RankContext& ctx, int p) override;
  void rank_async_send(simmpi::RankContext& ctx, int p) override;
  void absorb_payload(simmpi::RankContext& ctx, int p, std::size_t nbi,
                      std::span<const double> payload) override;

  /// Repartition recovery re-seeds Γ and the advertised norms exactly
  /// (setup exchange, Alg. 2 line 5).
  RecoveryContract recovery_contract() const override {
    RecoveryContract c;
    c.reseeds_estimates = true;
    return c;
  }

 protected:
  // Checkpoint stream: per rank — advertised ‖r‖², then Γ².
  void capture_extra(std::vector<double>& out) const override;
  void restore_extra(std::span<const double> in) override;

 private:
  // Wire records (encodings in wire/wire.hpp):
  //   SOLVE p->q: NormUpdate{norm2 = new ‖r_p‖², dx = boundary Δx}.
  //   RES   p->q: ResidualNorm{norm2 = current ‖r_p‖²}.
  void rank_relax(simmpi::RankContext& ctx, int p);
  void rank_residual_update(simmpi::RankContext& ctx, int p);

  bool explicit_residual_updates_;
  std::vector<std::vector<value_t>> gamma2_;   // per rank, per neighbor ‖r_q‖²
  std::vector<value_t> advertised2_;           // last norm² told to neighbors
};

}  // namespace dsouth::dist
