#include "faults/fault_plan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsouth::faults {

namespace {

/// SplitMix64 output function (same constants the runtime's delay RNG
/// uses), applied as a stateless avalanche over the draw key.
inline std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash of (seed, salt, epoch, src, dst, seq). Each fault type uses its
/// own salt so the draws are mutually independent; `lane` further splits
/// one fault type into independent sub-draws (e.g. corrupt index vs bit).
inline std::uint64_t draw(std::uint64_t seed, std::uint64_t salt,
                          std::uint64_t epoch, int src, int dst,
                          std::uint64_t seq, std::uint64_t lane = 0) {
  std::uint64_t h = mix(seed ^ salt);
  h = mix(h ^ epoch);
  h = mix(h ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst)));
  h = mix(h ^ seq);
  if (lane != 0) h = mix(h ^ lane);
  return h;
}

/// Map a hash to a uniform double in [0, 1) — same bit recipe as the
/// runtime's delivery-delay draw.
inline double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Per-fault-type salts (arbitrary distinct constants).
constexpr std::uint64_t kSaltDrop = 0xD409ULL;
constexpr std::uint64_t kSaltDuplicate = 0xD0B1ULL;
constexpr std::uint64_t kSaltReorder = 0x4E04ULL;
constexpr std::uint64_t kSaltCorrupt = 0xC042ULL;
constexpr std::uint64_t kSaltTruncate = 0x7420ULL;
constexpr std::uint64_t kSaltKill = 0xDEADULL;

inline void check_probability(double p) { DSOUTH_CHECK(p >= 0.0 && p <= 1.0); }

void check_edge(const EdgeFaults& e) {
  check_probability(e.drop_probability);
  check_probability(e.duplicate_probability);
  check_probability(e.reorder_probability);
  check_probability(e.corrupt_probability);
  check_probability(e.truncate_probability);
}

}  // namespace

bool FaultPlan::any() const {
  if (defaults.any()) return true;
  for (const auto& e : edges) {
    if (e.faults.any()) return true;
  }
  for (const auto& s : stragglers) {
    if (s.slowdown != 1.0) return true;
  }
  for (const auto& s : stalls) {
    if (s.epochs > 0) return true;
  }
  if (!kills.empty()) return true;
  if (random_kills.probability > 0.0 && random_kills.max_kill_epoch > 0) {
    return true;
  }
  return false;
}

FaultSchedule::FaultSchedule(const FaultPlan& plan, int num_ranks)
    : plan_(plan),
      num_ranks_(num_ranks),
      edges_(static_cast<std::size_t>(num_ranks) *
                 static_cast<std::size_t>(num_ranks),
             plan.defaults),
      slowdowns_(static_cast<std::size_t>(num_ranks), 1.0),
      stalls_(static_cast<std::size_t>(num_ranks)),
      kill_epochs_(static_cast<std::size_t>(num_ranks), kNeverKilled) {
  DSOUTH_CHECK(num_ranks > 0);
  DSOUTH_CHECK(plan.max_reorder_epochs >= 1);
  check_edge(plan.defaults);
  for (const auto& o : plan.edges) {
    DSOUTH_CHECK(o.src >= 0 && o.src < num_ranks);
    DSOUTH_CHECK(o.dst >= 0 && o.dst < num_ranks);
    DSOUTH_CHECK_MSG(o.src != o.dst, "fault edge " << o.src << " -> itself");
    check_edge(o.faults);
    edges_[static_cast<std::size_t>(o.src) *
               static_cast<std::size_t>(num_ranks) +
           static_cast<std::size_t>(o.dst)] = o.faults;
  }
  for (const auto& s : plan.stragglers) {
    DSOUTH_CHECK(s.rank >= 0 && s.rank < num_ranks);
    DSOUTH_CHECK_MSG(s.slowdown >= 1.0, "straggler speeds a rank up");
    slowdowns_[static_cast<std::size_t>(s.rank)] = s.slowdown;
  }
  for (const auto& s : plan.stalls) {
    DSOUTH_CHECK(s.rank >= 0 && s.rank < num_ranks);
    stalls_[static_cast<std::size_t>(s.rank)].push_back(s);
  }
  for (auto& per_rank : stalls_) {
    std::sort(per_rank.begin(), per_rank.end(),
              [](const Stall& a, const Stall& b) {
                return a.first_epoch < b.first_epoch;
              });
  }
  // Permanent failures: explicit overrides first (earliest epoch wins) ...
  for (const auto& k : plan.kills) {
    DSOUTH_CHECK(k.rank >= 0 && k.rank < num_ranks);
    auto& e = kill_epochs_[static_cast<std::size_t>(k.rank)];
    e = std::min(e, k.epoch);
  }
  // ... then the seeded per-(rank, epoch) draws, precomputed so fence-time
  // queries are lookups. The draw key deliberately matches the documented
  // (seed, salt, epoch, rank) shape: src == dst == rank, seq == 0.
  const RandomKills& rk = plan.random_kills;
  check_probability(rk.probability);
  if (rk.probability > 0.0) {
    for (int r = 0; r < num_ranks; ++r) {
      auto& e = kill_epochs_[static_cast<std::size_t>(r)];
      for (std::uint64_t epoch = 0;
           epoch < rk.max_kill_epoch && epoch < e; ++epoch) {
        if (unit(draw(plan.seed, kSaltKill, epoch, r, r, /*seq=*/0)) <
            rk.probability) {
          e = epoch;
          break;
        }
      }
    }
  }
  for (auto e : kill_epochs_) {
    if (e != kNeverKilled) any_kills_ = true;
  }
}

std::uint64_t FaultSchedule::kill_epoch(int rank) const {
  DSOUTH_ASSERT(rank >= 0 && rank < num_ranks_);
  return kill_epochs_[static_cast<std::size_t>(rank)];
}

FaultDecision FaultSchedule::decide(std::uint64_t epoch, int src, int dst,
                                    std::uint64_t seq,
                                    std::size_t payload_doubles) const {
  DSOUTH_ASSERT(src >= 0 && src < num_ranks_);
  DSOUTH_ASSERT(dst >= 0 && dst < num_ranks_);
  const EdgeFaults& e = edge(src, dst);
  const std::uint64_t seed = plan_.seed;
  FaultDecision d;
  if (e.drop_probability > 0.0 &&
      unit(draw(seed, kSaltDrop, epoch, src, dst, seq)) <
          e.drop_probability) {
    d.drop = true;
    return d;  // a dropped message suffers no further faults
  }
  if (e.duplicate_probability > 0.0 &&
      unit(draw(seed, kSaltDuplicate, epoch, src, dst, seq)) <
          e.duplicate_probability) {
    d.duplicate = true;
  }
  if (e.reorder_probability > 0.0 &&
      unit(draw(seed, kSaltReorder, epoch, src, dst, seq)) <
          e.reorder_probability) {
    d.reorder_extra =
        1 + static_cast<int>(
                draw(seed, kSaltReorder, epoch, src, dst, seq, /*lane=*/1) %
                static_cast<std::uint64_t>(plan_.max_reorder_epochs));
  }
  if (payload_doubles > 0 && e.corrupt_probability > 0.0 &&
      unit(draw(seed, kSaltCorrupt, epoch, src, dst, seq)) <
          e.corrupt_probability) {
    d.corrupt = true;
    d.corrupt_index = static_cast<std::size_t>(
        draw(seed, kSaltCorrupt, epoch, src, dst, seq, /*lane=*/1) %
        static_cast<std::uint64_t>(payload_doubles));
    d.corrupt_bit = static_cast<int>(
        draw(seed, kSaltCorrupt, epoch, src, dst, seq, /*lane=*/2) % 64);
  }
  if (payload_doubles > 0 && e.truncate_probability > 0.0 &&
      unit(draw(seed, kSaltTruncate, epoch, src, dst, seq)) <
          e.truncate_probability) {
    d.truncate = true;
    d.truncate_len = static_cast<std::size_t>(
        draw(seed, kSaltTruncate, epoch, src, dst, seq, /*lane=*/1) %
        static_cast<std::uint64_t>(payload_doubles));
    d.corrupt = false;  // truncation supersedes the bit flip
  }
  return d;
}

double FaultSchedule::slowdown(int rank) const {
  DSOUTH_ASSERT(rank >= 0 && rank < num_ranks_);
  return slowdowns_[static_cast<std::size_t>(rank)];
}

std::uint64_t FaultSchedule::hold_until(int rank, std::uint64_t epoch) const {
  DSOUTH_ASSERT(rank >= 0 && rank < num_ranks_);
  std::uint64_t until = epoch;
  for (const auto& s : stalls_[static_cast<std::size_t>(rank)]) {
    if (s.first_epoch > epoch) break;  // sorted by start; none can cover
    const std::uint64_t end = s.first_epoch + s.epochs;
    if (epoch < end) until = std::max(until, end);
  }
  return until;
}

}  // namespace dsouth::faults
