#pragma once

/// \file fault_plan.hpp
/// Deterministic fault-injection plans for the simulated runtime
/// (docs/resilience.md).
///
/// A FaultPlan is a declarative description of what may go wrong on the
/// simulated fabric: per-edge message drop / duplication / bounded
/// reordering / payload corruption or truncation probabilities, straggler
/// ranks whose epochs run slower, and transient rank stalls that hold a
/// rank's outgoing messages for k epochs. Compiling the plan against a
/// rank count yields a FaultSchedule, which the Runtime consults at fence
/// time (Runtime::set_fault_schedule).
///
/// Determinism contract: every draw is a *stateless* SplitMix64-style hash
/// of (seed, fault-type salt, epoch, src, dst, seq). Because a message's
/// (epoch, src, dst, seq) key is assigned identically whichever execution
/// backend staged it (seq is the source's monotonic send counter), the
/// same plan produces bit-identical faults — and therefore bit-identical
/// runs — on the sequential and multithreaded backends, and the draws are
/// independent of the DeliveryModel's own RNG stream, so the two compose
/// without perturbing each other.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsouth::faults {

/// Per-channel fault probabilities (all in [0, 1], all default 0).
struct EdgeFaults {
  double drop_probability = 0.0;       ///< message silently lost
  double duplicate_probability = 0.0;  ///< message delivered twice
  double reorder_probability = 0.0;    ///< held 1..max_reorder extra fences
  double corrupt_probability = 0.0;    ///< one payload bit flipped
  double truncate_probability = 0.0;   ///< payload cut to a shorter prefix

  bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || corrupt_probability > 0.0 ||
           truncate_probability > 0.0;
  }
};

/// Override the default EdgeFaults on one directed (src -> dst) channel.
struct EdgeOverride {
  int src = -1;
  int dst = -1;
  EdgeFaults faults;
};

/// A rank whose local epoch cost is multiplied by `slowdown` (>= 1.0):
/// the bulk-synchronous fence then charges every epoch at the straggler's
/// pace — the "one slow node drags the machine" regime.
struct Straggler {
  int rank = -1;
  double slowdown = 1.0;
};

/// A transient stall: `rank` goes silent for `epochs` epochs starting at
/// `first_epoch` — messages it stages during the window are held and land
/// together at the fence that closes the stall's last epoch. (Rank
/// programs still run; only the rank's outgoing traffic is frozen, which
/// is how a one-sided-RMA peer experiences a stalled sender.)
struct Stall {
  int rank = -1;
  std::uint64_t first_epoch = 0;
  std::uint64_t epochs = 0;
};

/// A *permanent* rank failure: `rank` is dead from `epoch` on — it stops
/// relaxing, everything it has in flight is dropped, and peers observe
/// silence forever after (src/elastic recovers from this;
/// docs/resilience.md "Permanent failure and recovery"). Unlike a Stall
/// there is no recovery window: death is monotone in the epoch counter.
struct RankKill {
  int rank = -1;
  std::uint64_t epoch = 0;  ///< first epoch the rank is dead in
};

/// Seeded random permanent failures: each (rank, epoch) pair with
/// epoch < max_kill_epoch draws dead with probability `probability` from
/// the stateless (seed, salt, epoch, rank) hash — the same SplitMix64
/// scheme every other fault type uses, so kill draws perturb no other
/// stream. A rank's kill epoch is the *first* epoch whose draw fires;
/// FaultSchedule precomputes the draws at compile time, so runtime
/// queries are array lookups.
struct RandomKills {
  double probability = 0.0;        ///< per-(rank,epoch) death probability
  std::uint64_t max_kill_epoch = 0;  ///< draws cover epochs [0, max)
};

/// Declarative fault-injection plan. Default-constructed == no faults;
/// Runtime behaviour with `any() == false` is byte-identical to a run
/// with no plan at all (the driver never attaches an empty plan).
struct FaultPlan {
  std::uint64_t seed = 0xFA17ULL;
  EdgeFaults defaults;              ///< applied to every directed channel
  std::vector<EdgeOverride> edges;  ///< per-channel overrides (win over
                                    ///< defaults; last override wins)
  int max_reorder_epochs = 2;       ///< bound on reordering delay (>= 1)
  std::vector<Straggler> stragglers;
  std::vector<Stall> stalls;
  /// Explicit kill-at-epoch overrides (the earliest epoch wins when a rank
  /// appears more than once, or also draws a random kill).
  std::vector<RankKill> kills;
  /// Seeded random permanent failures (composes with explicit kills).
  RandomKills random_kills;

  /// True when the plan can perturb anything at all.
  bool any() const;
};

/// What the schedule decided for one staged message. At most one of
/// `drop`, (`corrupt` | `truncate`) applies to the payload; `duplicate`
/// and `reorder_extra` compose with either.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  bool truncate = false;
  int reorder_extra = 0;          ///< extra epochs to hold the message
  std::size_t corrupt_index = 0;  ///< payload double whose bit flips
  int corrupt_bit = 0;            ///< which of its 64 bits
  std::size_t truncate_len = 0;   ///< delivered payload length (prefix)
};

/// A FaultPlan compiled against a rank count: dense per-edge probability
/// table, per-rank slowdowns, per-rank stall windows. Immutable after
/// construction, so it is safe to share by const pointer with a Runtime
/// whose rank programs run concurrently.
class FaultSchedule {
 public:
  FaultSchedule(const FaultPlan& plan, int num_ranks);

  int num_ranks() const { return num_ranks_; }
  const FaultPlan& plan() const { return plan_; }

  /// Decide the fate of the message (src -> dst) with per-source send
  /// counter `seq`, staged in `epoch`. Pure function of the schedule's
  /// seed and the arguments — see the determinism contract above.
  FaultDecision decide(std::uint64_t epoch, int src, int dst,
                       std::uint64_t seq, std::size_t payload_doubles) const;

  /// Epoch-cost multiplier for `rank` (1.0 unless a straggler).
  double slowdown(int rank) const;

  /// The earliest epoch at which a message staged by `rank` in `epoch`
  /// may be delivered: `epoch` itself, or the end of the stall window
  /// covering `epoch` when the rank is stalled.
  std::uint64_t hold_until(int rank, std::uint64_t epoch) const;

  /// True when some stall window covers (rank, epoch).
  bool stalled(int rank, std::uint64_t epoch) const {
    return hold_until(rank, epoch) != epoch;
  }

  /// Sentinel kill epoch for a rank that never dies.
  static constexpr std::uint64_t kNeverKilled = ~0ULL;

  /// The epoch at which `rank` dies — the minimum over its explicit
  /// RankKill entries and its first firing random-kill draw — or
  /// kNeverKilled. Precomputed at construction, so this is a lookup.
  std::uint64_t kill_epoch(int rank) const;

  /// True when `rank` is permanently dead at `epoch`.
  bool dead(int rank, std::uint64_t epoch) const {
    return epoch >= kill_epoch(rank);
  }

  /// True when the plan configures any permanent failure at all (the
  /// runtime's cue to run the dead-traffic sweep at each fence).
  bool any_kills() const { return any_kills_; }

 private:
  const EdgeFaults& edge(int src, int dst) const {
    return edges_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(num_ranks_) +
                  static_cast<std::size_t>(dst)];
  }

  FaultPlan plan_;
  int num_ranks_;
  std::vector<EdgeFaults> edges_;   // dense num_ranks x num_ranks
  std::vector<double> slowdowns_;   // per rank, default 1.0
  std::vector<std::vector<Stall>> stalls_;  // per rank, sorted by start
  std::vector<std::uint64_t> kill_epochs_;  // per rank, kNeverKilled default
  bool any_kills_ = false;
};

}  // namespace dsouth::faults
